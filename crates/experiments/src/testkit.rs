//! Scenario-matrix test harness: declarative (scheme × cross-traffic ×
//! bottleneck × seed) cells with per-cell paper invariants.
//!
//! The paper's core claims are *qualitative behavioural invariants* — Cubic
//! bufferbloats while Vegas does not, Nimbus stays in delay mode under heavy
//! CBR cross traffic, Vegas is starved by an elastic competitor.  This module
//! pins those claims down the way TCP Prague's fall-back validation does:
//! enumerate a matrix of scenarios, run every cell (in parallel across
//! threads — each cell is an independent deterministic simulation), and
//! assert the invariants cell by cell.
//!
//! ```no_run
//! use nimbus_experiments::testkit::{paper_invariant_matrix, run_matrix};
//!
//! let outcomes = run_matrix(&paper_invariant_matrix());
//! for o in &outcomes {
//!     assert!(o.violations.is_empty(), "{}: {:?}", o.name, o.violations);
//! }
//! ```
//!
//! Every [`CellOutcome`] also carries a fingerprint of the cell's full
//! [`Recorder`](nimbus_netsim::Recorder) snapshot, so the same matrix doubles
//! as a whole-system determinism regression: run it twice, compare
//! fingerprints.

use crate::figures::{cbr_cross_flow, poisson_cross_flow, scheme_cross_flow};
use crate::runner::{
    run_scheme_vs_cross, EcnSpec, FleetSpec, LinkScheduleSpec, PathSpec, ScenarioSpec,
    SingleFlowMetrics,
};
use crate::scheme::SchemeSpec;
use nimbus_core::TcpScheme;
use nimbus_netsim::{FlowConfig, FlowEndpoint};
use serde::{Deserialize, Serialize};

/// The cross-traffic families a matrix cell can put on the bottleneck.
/// Elastic competitors carry a full [`SchemeSpec`], so any scheme the
/// algebra can express — including other Nimbus wrappers — can compete with
/// the monitored flow, alone ([`CrossTraffic::Elastic`]), in heterogeneous
/// groups ([`CrossTraffic::Mix`]), or confined to a segment of a multi-hop
/// path ([`CrossTraffic::ElasticAtHops`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CrossTraffic {
    /// No cross traffic: the monitored flow is alone on the link.
    None,
    /// Constant-bit-rate (inelastic) cross traffic at this fraction of µ.
    Cbr {
        /// Offered CBR rate as a fraction of the bottleneck rate.
        fraction_of_mu: f64,
    },
    /// Poisson (inelastic) cross traffic at this fraction of µ.
    Poisson {
        /// Mean offered rate as a fraction of the bottleneck rate.
        fraction_of_mu: f64,
    },
    /// One backlogged competitor running any scheme spec.
    Elastic {
        /// The competitor's scheme.
        spec: SchemeSpec,
    },
    /// Several backlogged competitors, one per spec (heterogeneous
    /// competition on a single bottleneck).
    Mix {
        /// The competitors' schemes, in flow order.
        specs: Vec<SchemeSpec>,
    },
    /// One backlogged competitor confined to hops `[enter_hop, exit_hop]`
    /// of a multi-hop path (e.g. elastic traffic on the non-bottleneck hop).
    ElasticAtHops {
        /// The competitor's scheme.
        spec: SchemeSpec,
        /// First hop the competitor traverses.
        enter_hop: usize,
        /// Last hop the competitor traverses (inclusive).
        exit_hop: usize,
    },
    /// An open-loop churning fleet of finite flows ([`FleetSpec`]): flows
    /// arrive Poisson/bursty, run to completion and retire.  Installed as a
    /// spawner on the scenario rather than as static flows, so it
    /// contributes no static cross-flow entries.
    Fleet {
        /// The fleet workload riding on the cell's scenario.
        spec: FleetSpec,
    },
}

impl CrossTraffic {
    /// The classic single backlogged Cubic competitor.
    pub fn elastic_cubic() -> Self {
        CrossTraffic::Elastic {
            spec: SchemeSpec::cubic(),
        }
    }

    /// Materialize the cross flows.  `link_rate_bps` is the cell's hop-0
    /// base rate (the base the `fraction_of_mu` families are quoted
    /// against, unchanged from the pre-path testkit); `scheme_mu_bps` is
    /// the nominal bottleneck rate over the hops the spec-built competitor
    /// traverses, handed to configured-µ wrappers.
    fn build(
        &self,
        link_rate_bps: f64,
        scheme_mu_bps: f64,
        seed: u64,
    ) -> Vec<(FlowConfig, Box<dyn FlowEndpoint>)> {
        let cross_seed = seed.wrapping_mul(67).wrapping_add(11);
        match self {
            CrossTraffic::None => Vec::new(),
            // The fleet is installed as a spawner on the scenario spec
            // (see `Cell::run`), not as a static flow list.
            CrossTraffic::Fleet { .. } => Vec::new(),
            CrossTraffic::Cbr { fraction_of_mu } => vec![cbr_cross_flow(
                "cbr-cross",
                fraction_of_mu * link_rate_bps,
                0.05,
                0.0,
                None,
            )],
            CrossTraffic::Poisson { fraction_of_mu } => vec![poisson_cross_flow(
                "poisson-cross",
                fraction_of_mu * link_rate_bps,
                0.05,
                seed.wrapping_mul(31).wrapping_add(7),
                0.0,
                None,
            )],
            CrossTraffic::Elastic { spec } => vec![scheme_cross_flow(
                &format!("{}-cross", spec.label()),
                spec,
                scheme_mu_bps,
                cross_seed,
                0.05,
                0.0,
                None,
            )],
            CrossTraffic::Mix { specs } => specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    scheme_cross_flow(
                        &format!("{}-cross{i}", spec.label()),
                        spec,
                        scheme_mu_bps,
                        cross_seed.wrapping_add(i as u64),
                        0.05,
                        0.0,
                        None,
                    )
                })
                .collect(),
            CrossTraffic::ElasticAtHops {
                spec,
                enter_hop,
                exit_hop,
            } => {
                let (cfg, ep) = scheme_cross_flow(
                    &format!("{}-hop{enter_hop}-cross", spec.label()),
                    spec,
                    scheme_mu_bps,
                    cross_seed,
                    0.05,
                    0.0,
                    None,
                );
                vec![(cfg.entering_at(*enter_hop).exiting_at(*exit_hop), ep)]
            }
        }
    }

    /// A short slug for cell names.
    pub fn label(&self) -> String {
        match self {
            CrossTraffic::None => "alone".to_string(),
            CrossTraffic::Cbr { fraction_of_mu } => {
                format!("cbr{:.0}", fraction_of_mu * 100.0)
            }
            CrossTraffic::Poisson { fraction_of_mu } => {
                format!("poisson{:.0}", fraction_of_mu * 100.0)
            }
            CrossTraffic::Elastic { spec } => spec.label(),
            CrossTraffic::Mix { specs } => specs
                .iter()
                .map(SchemeSpec::label)
                .collect::<Vec<_>>()
                .join("+"),
            CrossTraffic::ElasticAtHops {
                spec, enter_hop, ..
            } => format!("{}-hop{enter_hop}", spec.label()),
            CrossTraffic::Fleet { spec } => spec.label(),
        }
    }
}

/// Bounds asserted against a cell's [`SingleFlowMetrics`].  `None` bounds are
/// not checked; every cell in a matrix should set at least one.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Invariants {
    /// Steady-state mean throughput must be at least this (Mbit/s).
    pub min_throughput_mbps: Option<f64>,
    /// Steady-state mean throughput must stay below this (Mbit/s) — for
    /// starvation claims.
    pub max_throughput_mbps: Option<f64>,
    /// Steady-state mean queueing delay must stay below this (ms).
    pub max_queue_delay_ms: Option<f64>,
    /// Steady-state mean queueing delay must be at least this (ms) — for
    /// bufferbloat claims.
    pub min_queue_delay_ms: Option<f64>,
    /// Nimbus: fraction of time in delay mode must be at least this.
    pub min_delay_mode_fraction: Option<f64>,
    /// Nimbus: fraction of time in delay mode must stay below this.
    pub max_delay_mode_fraction: Option<f64>,
    /// Nimbus with learned µ: mean relative µ-tracking error against the true
    /// schedule must stay below this.
    pub max_mu_error: Option<f64>,
    /// Nimbus: the mode log must contain at least one switch to competitive.
    pub must_enter_competitive: bool,
}

/// One (scheme × cross-traffic × bottleneck × schedule × path × seed) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scheme on the monitored flow.
    pub scheme: SchemeSpec,
    /// Cross traffic sharing the bottleneck.
    pub cross: CrossTraffic,
    /// Base bottleneck rate µ in bits/s.
    pub link_rate_bps: f64,
    /// How the bottleneck rate moves over the run.
    pub schedule: LinkScheduleSpec,
    /// Extra hops after the primary bottleneck (single-link when empty).
    pub path: PathSpec,
    /// Simulation seed.
    pub seed: u64,
    /// Run length in seconds.
    pub duration_s: f64,
    /// Start of the steady-state window used for the scalar metrics.
    pub steady_start_s: f64,
    /// ECN marking on the primary bottleneck (`ecn=` axis;
    /// [`EcnSpec::Off`] everywhere marking is not under test).
    pub ecn: EcnSpec,
    /// The invariants this cell asserts.
    pub invariants: Invariants,
}

impl Cell {
    /// `scheme@mu[-schedule][-path] vs cross (seed n)` — unique within a
    /// well-formed matrix.
    pub fn name(&self) -> String {
        let schedule = if self.schedule == LinkScheduleSpec::Constant {
            String::new()
        } else {
            format!("-{}", self.schedule.label())
        };
        format!(
            "{}@{:.0}M{}{}{}-vs-{}-seed{}",
            self.scheme.label(),
            self.link_rate_bps / 1e6,
            schedule,
            self.path.label(),
            self.ecn.label(),
            self.cross.label(),
            self.seed
        )
    }

    /// Run this cell to completion and evaluate its invariants.
    pub fn run(&self) -> CellOutcome {
        let fleet = match &self.cross {
            CrossTraffic::Fleet { spec } => Some(spec.clone()),
            _ => None,
        };
        let spec = ScenarioSpec {
            link_rate_bps: self.link_rate_bps,
            schedule: self.schedule.clone(),
            duration_s: self.duration_s,
            seed: self.seed,
            path: self.path.clone(),
            fleet,
            ecn: self.ecn,
            ..ScenarioSpec::default_96mbps(self.duration_s)
        };
        let scheme_mu = match &self.cross {
            CrossTraffic::ElasticAtHops {
                enter_hop,
                exit_hop,
                ..
            } => self
                .path
                .nominal_mu_over_hops(self.link_rate_bps, *enter_hop, Some(*exit_hop)),
            _ => spec.nominal_mu_bps(),
        };
        let cross = self.cross.build(self.link_rate_bps, scheme_mu, self.seed);
        let out = run_scheme_vs_cross(&spec, self.scheme, None, cross, self.steady_start_s);
        let events = out.events_processed;
        let sim_s = out.duration_s;
        let metrics = out.flows.into_iter().next().expect("one monitored flow");
        let violations = self.invariants.check(self.scheme, &metrics);
        let fingerprint = fingerprint_of(&out.recorder.snapshot(), &metrics);
        CellOutcome {
            name: self.name(),
            metrics,
            violations,
            fingerprint,
            events,
            sim_s,
        }
    }
}

impl Invariants {
    /// Evaluate the bounds against a cell's metrics; returns one message per
    /// violated bound (empty = cell passes).
    /// Every comparison is written so that a NaN metric (an empty measurement
    /// window — see `TimeSeries::mean_in_range`) counts as a violation rather
    /// than silently passing; the negated comparisons are exactly that intent.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn check(&self, scheme: SchemeSpec, m: &SingleFlowMetrics) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(min) = self.min_throughput_mbps {
            if !(m.mean_throughput_mbps >= min) {
                violations.push(format!(
                    "throughput {:.2} Mbit/s below floor {min}",
                    m.mean_throughput_mbps
                ));
            }
        }
        if let Some(max) = self.max_throughput_mbps {
            if !(m.mean_throughput_mbps <= max) {
                violations.push(format!(
                    "throughput {:.2} Mbit/s above ceiling {max} (starvation expected)",
                    m.mean_throughput_mbps
                ));
            }
        }
        if let Some(max) = self.max_queue_delay_ms {
            if !(m.mean_queue_delay_ms <= max) {
                violations.push(format!(
                    "queue delay {:.2} ms above ceiling {max}",
                    m.mean_queue_delay_ms
                ));
            }
        }
        if let Some(min) = self.min_queue_delay_ms {
            if !(m.mean_queue_delay_ms >= min) {
                violations.push(format!(
                    "queue delay {:.2} ms below floor {min} (bufferbloat expected)",
                    m.mean_queue_delay_ms
                ));
            }
        }
        if let Some(min) = self.min_delay_mode_fraction {
            if !(m.delay_mode_fraction >= min) {
                violations.push(format!(
                    "delay-mode fraction {:.2} below floor {min}",
                    m.delay_mode_fraction
                ));
            }
        }
        if let Some(max) = self.max_delay_mode_fraction {
            if !(m.delay_mode_fraction <= max) {
                violations.push(format!(
                    "delay-mode fraction {:.2} above ceiling {max}",
                    m.delay_mode_fraction
                ));
            }
        }
        if let Some(max) = self.max_mu_error {
            if !(m.mu_tracking_error <= max) {
                violations.push(format!(
                    "µ-tracking error {:.3} above ceiling {max}",
                    m.mu_tracking_error
                ));
            }
        }
        if self.must_enter_competitive {
            assert!(
                scheme.is_nimbus(),
                "must_enter_competitive only makes sense for Nimbus schemes"
            );
            if !m.mode_log.iter().any(|(_, mode)| mode == "competitive") {
                violations.push("never entered competitive mode".to_string());
            }
        }
        violations
    }
}

/// The result of one cell run.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// `Cell::name()` of the cell that produced this outcome.
    pub name: String,
    /// The monitored flow's metrics.
    pub metrics: SingleFlowMetrics,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
    /// FNV-1a hash over the serialized recorder snapshot and metrics; two
    /// runs of the same cell must agree byte for byte.
    pub fingerprint: u64,
    /// Engine events processed by this cell's simulation.
    pub events: u64,
    /// Simulated seconds covered.
    pub sim_s: f64,
}

fn fingerprint_of(recorder_snapshot: &serde::Value, metrics: &SingleFlowMetrics) -> u64 {
    let mut text = serde_json::to_string(recorder_snapshot).expect("snapshot serializes");
    text.push_str(&serde_json::to_string(metrics).expect("metrics serialize"));
    fnv1a(text.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Map `f` over `items` in parallel across up to `max_threads` worker
/// threads (each item is expected to be an independent deterministic
/// computation).  Items are handed to workers through a shared index, so a
/// slow item never idles the other workers; results come back in input order
/// regardless of completion order.
///
/// This is the work queue behind both [`run_matrix`] and the experiments
/// binary's `sweep` subcommand.
pub fn parallel_map<T, R, F>(items: &[T], max_threads: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let parallelism = max_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1)
        .min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..parallelism {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("all items ran")
        })
        .collect()
}

/// Run every cell of a matrix, in parallel across threads (each cell is an
/// independent deterministic simulation).
pub fn run_matrix(cells: &[Cell]) -> Vec<CellOutcome> {
    parallel_map(cells, None, Cell::run)
}

/// Render a one-line-per-cell report (for `--nocapture` debugging).
pub fn matrix_report(outcomes: &[CellOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&format!(
            "{:46} tput {:7.2} Mbit/s  qd {:7.2} ms  delay-frac {:.2}  {}\n",
            o.name,
            o.metrics.mean_throughput_mbps,
            o.metrics.mean_queue_delay_ms,
            o.metrics.delay_mode_fraction,
            if o.violations.is_empty() {
                "ok".to_string()
            } else {
                format!("VIOLATIONS: {:?}", o.violations)
            }
        ));
    }
    out
}

/// The default paper-invariant matrix: the 18 legacy single-bottleneck
/// cells ([`legacy_single_bottleneck_cells`]) covering the headline claims
/// of Figs. 1/8 and Appendix D, seven multi-hop path cells
/// ([`multihop_cells`]: fixed and *moving* secondary bottlenecks, learned-µ
/// tracking the path minimum, doubly-saturated hops, elastic traffic on the
/// non-bottleneck hop), five spec-combination cells
/// ([`spec_combination_cells`]) exercising wrapper compositions the closed
/// enum could not express, the estimator-strategy cells
/// ([`estimator_cells`]) gating the regimes the pluggable µ-estimation API
/// recovers, the fleet-churn cells ([`fleet_cells`]) gating detector
/// stability and fairness under open-loop flow churn, and the ECN cells
/// ([`ecn_cells`]) gating marking queues, DCTCP and mark-driven detection.  Kept short enough
/// (~30 simulated seconds per cell) that the whole matrix runs in well
/// under two minutes of wall clock under `cargo test`.
pub fn paper_invariant_matrix() -> Vec<Cell> {
    let mut cells = legacy_single_bottleneck_cells();
    cells.extend(multihop_cells());
    cells.extend(spec_combination_cells());
    cells.extend(estimator_cells());
    cells.extend(fleet_cells());
    cells.extend(ecn_cells());
    cells
}

/// Matrix cells gating the ECN subsystem end to end: marking queues
/// (`ecn=classic` and the shallow `ecn=l4s` step profile), the DCTCP
/// scalable reaction, and the Nimbus detector's behaviour when congestion
/// is signalled by marks instead of drops or delay.
///
/// The three ROADMAP questions these answer:
///
/// 1. **Does the pulse survive a shallow-marking queue?**  Yes — under the
///    1 ms L4S step marker the standing queue Nimbus's pulses ride on is
///    tiny, but the pulses themselves live in the *rate* signal, so alone
///    on an L4S hop the flow holds delay mode at full throughput.
/// 2. **Can mark-rate cross-validate ẑ?**  Yes — against an elastic
///    competitor on a classic-ECN queue, the persistent CE fraction agrees
///    with ẑ and the controller flips to competitive well inside one FFT
///    window (the `marks` cell asserts the switch; the timing assertion
///    lives in `nimbus-core`'s controller tests).
/// 3. **Does `nimbus(competitive=dctcp)` coexist on a classic-ECN queue?**
///    Yes — against a DCTCP competitor it detects elasticity and takes a
///    fair share using the same proportional law, instead of Cubic-style
///    sawteeth against a mark-reactive peer.
pub fn ecn_cells() -> Vec<Cell> {
    vec![
        // DCTCP alone on an L4S step-marking hop: the scalable reaction
        // holds the queue near the 1 ms marking threshold — full link,
        // milliseconds of delay, zero drops (the l4s runner test pins the
        // zero-drop half).
        Cell {
            scheme: SchemeSpec::dctcp(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 61,
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::l4s(),
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                max_queue_delay_ms: Some(8.0),
                ..Invariants::default()
            },
        },
        // The Prague-style fall-back: the same DCTCP flow on a plain drop
        // queue (no marking anywhere) must still work — marks never arrive,
        // so the Reno-like loss reaction governs and the flow fills the
        // link behind a droptail standing queue.
        Cell {
            scheme: SchemeSpec::dctcp(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 61,
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                min_queue_delay_ms: Some(20.0),
                ..Invariants::default()
            },
        },
        // Classic ECN (RFC 3168 semantics, marks at the AQM's drop point):
        // Cubic keeps the link full but the once-per-window β cut now fires
        // at half buffer instead of overflow, so the bloat sits at roughly
        // half its droptail level.
        Cell {
            scheme: SchemeSpec::cubic(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 61,
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Classic,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                min_queue_delay_ms: Some(20.0),
                max_queue_delay_ms: Some(70.0),
                ..Invariants::default()
            },
        },
        // ROADMAP question 1 — pulse survival: Nimbus alone on the shallow
        // L4S marker.  The 1 ms step cuts the queueing-delay headroom the
        // pulses used to ride on by an order of magnitude; the detector
        // must still read its own reflection as inelastic (hold delay
        // mode) at full utilization.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 62,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::l4s(),
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                max_queue_delay_ms: Some(20.0),
                min_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        },
        // Documented finding — delay-mode Nimbus is not scalable-marking
        // compliant.  Its delay target (~12 ms of queue) sits an order of
        // magnitude above the L4S step threshold, so a DCTCP competitor
        // sees CE on every packet, cuts to its floor, and Nimbus takes the
        // link.  With the competitor crushed there is nothing elastic left
        // to detect (ẑ ≈ 0), so staying in delay mode is the *correct*
        // verdict — the unfairness is a compliance gap, not a detection
        // bug.  Pinned so a future Prague-style sub-threshold delay target
        // shows up as a deliberate threshold change.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Elastic {
                spec: SchemeSpec::dctcp(),
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 2,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::l4s(),
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                min_delay_mode_fraction: Some(0.95),
                ..Invariants::default()
            },
        },
        // ROADMAP questions 2 and 3 together — nimbus(competitive=dctcp)
        // vs DCTCP on a classic-ECN queue.  DCTCP parks the queue at the
        // marking threshold (~50 ms), far above Nimbus's delay target, so
        // the rate law yields and the FFT goes sample-starved — but unlike
        // the Cubic residual below, the marks here are *persistent*, and
        // the windowed mark fraction (counted over ACKed packets, so ACK
        // sparsity cannot masquerade as mark absence) cross-validates the
        // starved flow's own ẑ ≈ µ reading to flip the controller
        // competitive without a full FFT window.  Competitive
        // mode then speaks DCTCP's own proportional mark language and the
        // flows coexist.
        Cell {
            scheme: SchemeSpec::nimbus().with_competitive(TcpScheme::Dctcp),
            cross: CrossTraffic::Elastic {
                spec: SchemeSpec::dctcp(),
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 2,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Classic,
            invariants: Invariants {
                min_throughput_mbps: Some(12.0),
                max_delay_mode_fraction: Some(0.9),
                must_enter_competitive: true,
                ..Invariants::default()
            },
        },
        // Documented residual: delay-mode Nimbus vs an ECT Cubic on a
        // *classic* marking queue starves and never detects.  The marking
        // point (half buffer) tames Cubic into a 35–50 ms sawtooth: deep
        // enough to sit above delay mode's operating point (so the rate law
        // yields), never deep enough for a sustained mark fraction, and the
        // starved flow's ACK stream is too sparse to fill the detector's
        // FFT window — the droptail escape hatch (the competitor's slow-
        // start overflow losses) never happens, because marks absorb them.
        // Pinned so the failure mode stays visible until detection under
        // sample starvation is addressed.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 2,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Classic,
            invariants: Invariants {
                max_throughput_mbps: Some(5.0),
                min_delay_mode_fraction: Some(0.95),
                ..Invariants::default()
            },
        },
        // DCTCP coexisting with Cubic on one classic-ECN queue: both see
        // the same marks, Cubic cuts by β while DCTCP cuts by α/2, and
        // neither starves.
        Cell {
            scheme: SchemeSpec::dctcp(),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 65,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Classic,
            invariants: Invariants {
                min_throughput_mbps: Some(15.0),
                ..Invariants::default()
            },
        },
    ]
}

/// Matrix cells gating behaviour under open-loop fleet churn (§8.1 at
/// population scale): a long-lived monitored flow shares the bottleneck
/// with a [`FleetSpec`] population that arrives, transfers and retires
/// continuously.
///
/// The headline question — does constant arrival/departure churn *read as
/// elastic* to a long-lived Nimbus flow?  Measured answer: **no**, across
/// every mixture tried (loads 0.4–0.7, mean sizes 20 kB–2 MB, Poisson and
/// bursty arrivals, several seeds the delay-mode fraction stays 1.00).
/// Individual elephants are elastic while they last, but arrivals and
/// departures reshuffle the aggregate's share faster than the detector's
/// decision window, so the cross-correlation signature of a backlogged
/// competitor never accumulates — exactly the paper's premise that typical
/// WAN cross traffic should be treated as inelastic (§2).  These cells pin
/// that stability as an invariant.
pub fn fleet_cells() -> Vec<Cell> {
    vec![
        // Detector stability: pure-mice churn (mean 20 kB — flows last a few
        // RTTs each) at 40% offered load.  Nothing in the population is
        // durably ACK-clocked, so Nimbus must hold delay mode and keep the
        // queue short while taking roughly the residual capacity.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Fleet {
                spec: FleetSpec::poisson(0.4).with_mean_flow_bytes(20_000.0),
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 51,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(15.0),
                max_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.8),
                ..Invariants::default()
            },
        },
        // The same churn through bursty (Pareto) arrivals: batches of
        // simultaneous mice still must not read as a backlogged competitor.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Fleet {
                spec: FleetSpec::bursty(0.4).with_mean_flow_bytes(20_000.0),
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 51,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(15.0),
                max_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.8),
                ..Invariants::default()
            },
        },
        // Heavy-tailed churn (default CAIDA-like mixture, 50% load): even
        // with elephants regularly in flight the detector must NOT latch
        // onto any single one — the population churns underneath it, so the
        // long-lived flow holds delay mode (measured 1.00) and keeps its
        // residual share at low delay.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Fleet {
                spec: FleetSpec::poisson(0.5),
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 52,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(15.0),
                max_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        },
        // The FCT-comparison partner cell: the same heavy-tailed churn
        // against a long-lived Cubic.  Churn loss keeps Cubic's window —
        // and the standing queue — far below its solo bufferbloat (measured
        // ~16 ms vs ~50+ alone), and its loss-based probing takes *less*
        // of the link than Nimbus's delay mode does under identical churn
        // (12.7 vs 23.5 Mbit/s).  `fleet_fct` quantifies the same pairing
        // from the fleet's side as FCT distributions.
        Cell {
            scheme: SchemeSpec::cubic(),
            cross: CrossTraffic::Fleet {
                spec: FleetSpec::poisson(0.5),
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 52,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(8.0),
                max_queue_delay_ms: Some(40.0),
                ..Invariants::default()
            },
        },
    ]
}

/// Matrix cells gating the µ-estimation strategy API: the two ROADMAP
/// regimes where the hardwired max-filter learned µ degrades, recovered
/// under a non-default estimator/ẑ-filter, plus a guard that the adaptive
/// thresholds do not suppress *genuine* elasticity.
pub fn estimator_cells() -> Vec<Cell> {
    vec![
        // ROADMAP regime (b): on the cellular deep-fade trace the max-filter
        // learned µ collapses to the pacing floor and deadlocks (µ̂ ≈ recv
        // rate ≈ pace ≈ 120 kbit/s, 0.12 Mbit/s throughput while BBR gets
        // ~38).  Probe-up epochs plus the delivery-informed pace/window cap
        // break the fixed point: ≥ 10 Mbit/s required (measured 14.7).
        Cell {
            scheme: SchemeSpec::nimbus().with_probing_mu(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::NamedTrace {
                name: "cellular".to_string(),
            },
            path: PathSpec::single(),
            seed: 44,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(10.0),
                ..Invariants::default()
            },
        },
        // ROADMAP regime (a): learned-µ wrappers lose delay mode on a ±10%
        // sinusoid where configured µ is stable (delay-fraction 0.07–0.25 —
        // the µ̂ error leaks the flow's own pulse into ẑ well below the
        // configured-µ cliff).  The µ-error-aware adaptive thresholds hold
        // delay mode ≥ 0.9 (measured 1.00, queueing delay 3.5 ms vs 39).
        Cell {
            scheme: SchemeSpec::nimbus()
                .with_learned_mu()
                .with_z_filter(nimbus_core::ZFilterConfig::adaptive()),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Sinusoid {
                amplitude_frac: 0.1,
                period_s: 10.0,
            },
            path: PathSpec::single(),
            seed: 43,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(35.0),
                min_delay_mode_fraction: Some(0.9),
                max_queue_delay_ms: Some(20.0),
                ..Invariants::default()
            },
        },
        // Guard: the adaptive bars must rise only for the µ̂-error *leak* —
        // against a genuine elastic Cubic competitor (which fills ẑ itself,
        // damping the scaling) the wrapper must still detect and switch.
        Cell {
            scheme: SchemeSpec::nimbus()
                .with_learned_mu()
                .with_z_filter(nimbus_core::ZFilterConfig::adaptive()),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 42,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(12.0),
                max_delay_mode_fraction: Some(0.9),
                must_enter_competitive: true,
                ..Invariants::default()
            },
        },
        // The probing-estimator residual, quantified: on a *stable* link the
        // 2× probe epochs repeatedly refill the bottleneck queue, so the
        // always-probing estimator pays ~73 ms of steady queueing delay
        // where plain `mu=learned` pays ~13 — delay mode's low-delay
        // objective is the price of a probe schedule the converged filter no
        // longer needs.  This cell pins that cost so the residual stays
        // visible.
        Cell {
            scheme: SchemeSpec::nimbus().with_probing_mu(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 45,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                min_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        },
        // …and recovered: with the auto-quiesce floor the probes stop once
        // the max filter converges (µ̂ uncertainty under 0.4), so on the same
        // stable link the delay cost collapses back to ~15 ms, while against
        // a genuinely elastic Cubic competitor the uncertainty stays high
        // enough that detection still works — the flow must switch to
        // competitive mode and hold a fair share (un-quiesced probe=1 never
        // switches at all: the held ẑ blanks the detector's input).
        Cell {
            scheme: SchemeSpec::nimbus().with_quiesced_probing_mu(1.0, 0.4),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 45,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                max_queue_delay_ms: Some(20.0),
                min_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        },
        Cell {
            scheme: SchemeSpec::nimbus().with_quiesced_probing_mu(1.0, 0.4),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 45,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(12.0),
                max_delay_mode_fraction: Some(0.9),
                must_enter_competitive: true,
                ..Invariants::default()
            },
        },
        // The flip side of that recovery, pinned as an invariant (ROADMAP
        // residual 3): what does *un*-quiesced `mu=learned(probe=1)` give
        // up against the same elastic Cubic competitor?  Detection itself.
        // The probe epochs hold ẑ at its pre-probe value, blanking the
        // detector's input, so the wrapper never classifies the competitor
        // as elastic — it reports delay mode the whole run (fraction 1.00,
        // never a switch).  It doesn't starve: the endless 2× probe epochs
        // overdrive µ̂ and the pace until the flow bulldozes Cubic off the
        // link (measured 47.7 of 48 Mbit/s) behind a ~73 ms standing queue
        // — "delay mode" in name only, with neither the low-delay objective
        // nor honest competition.  Same seed/link as the quiesce pair above,
        // so the cells differ only in the quiesce floor.
        Cell {
            scheme: SchemeSpec::nimbus().with_probing_mu(),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 45,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                min_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.95),
                ..Invariants::default()
            },
        },
        // Documented residual: the adaptive ẑ-filter rescue of learned µ on
        // the ±10% sinusoid (the second cell above) is *partial* when the
        // delay half is Copa instead of basic-delay — Copa's own rate
        // oscillation beats against the sinusoid and leaks through the
        // µ̂-error-scaled bars, so `nimbus(delay=copa, mu=learned,
        // zfilter=adaptive)` holds delay mode only ~0.74 of the run where
        // the basic-delay wrapper holds ≥ 0.9.  Pinned as a band (not a
        // floor) so the residual stays visible: an accidental fix would
        // trip the ceiling and upgrade the threshold deliberately.
        Cell {
            scheme: SchemeSpec::nimbus_copa()
                .with_learned_mu()
                .with_z_filter(nimbus_core::ZFilterConfig::adaptive()),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Sinusoid {
                amplitude_frac: 0.1,
                period_s: 10.0,
            },
            path: PathSpec::single(),
            seed: 43,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(35.0),
                min_delay_mode_fraction: Some(0.55),
                max_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        },
    ]
}

/// The 18 single-bottleneck cells that predate both the path engine and the
/// `SchemeSpec` redesign.  Kept as a stable, separately runnable slice
/// because their recorder fingerprints are pinned
/// (`tests/multihop_scenarios.rs`): every refactor of the scheme or engine
/// layers must reproduce them byte for byte.
pub fn legacy_single_bottleneck_cells() -> Vec<Cell> {
    let mut cells = Vec::new();

    // Fig. 1a: Cubic fills the 100 ms buffer (bufferbloat) but also the link.
    for seed in [3, 11] {
        cells.push(Cell {
            scheme: SchemeSpec::cubic(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                min_queue_delay_ms: Some(40.0),
                ..Invariants::default()
            },
        });
    }

    // Fig. 1b: Vegas keeps the queue nearly empty at full throughput.
    for seed in [3, 11] {
        cells.push(Cell {
            scheme: SchemeSpec::vegas(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                max_queue_delay_ms: Some(15.0),
                ..Invariants::default()
            },
        });
    }

    // The motivating failure: Vegas starved by an elastic Cubic competitor.
    for seed in [5, 13] {
        cells.push(Cell {
            scheme: SchemeSpec::vegas(),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 40.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                max_throughput_mbps: Some(30.0),
                ..Invariants::default()
            },
        });
    }

    // Appendix D.1: Nimbus holds delay mode under 83% CBR cross traffic.
    for seed in [4, 12] {
        cells.push(Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Cbr {
                fraction_of_mu: 5.0 / 6.0,
            },
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(8.0),
                max_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.5),
                ..Invariants::default()
            },
        });
    }

    // Fig. 1c right half: Nimbus vs inelastic Poisson cross traffic — low
    // delay, near fair-share throughput, delay mode.
    for seed in [1, 9] {
        cells.push(Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Poisson {
                fraction_of_mu: 0.5,
            },
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(15.0),
                max_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.6),
                ..Invariants::default()
            },
        });
    }

    // Fig. 1c left half: Nimbus vs an elastic Cubic competitor — must detect
    // elasticity, switch to competitive mode and hold a useful share.
    for seed in [2, 10] {
        cells.push(Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(12.0),
                max_delay_mode_fraction: Some(0.9),
                must_enter_competitive: true,
                ..Invariants::default()
            },
        });
    }

    // Nimbus alone: nothing elastic to compete with, so it must stay in
    // delay mode and keep the queue near its small target.
    for seed in [6, 14] {
        cells.push(Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            seed,
            path: PathSpec::single(),
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(30.0),
                max_queue_delay_ms: Some(40.0),
                min_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        });
    }

    // Varying link, µ estimation (§4.2): a lone Nimbus flow learning µ from
    // its max receive rate must track a ±25% sinusoid within tolerance (the
    // 10-second max filter rides the upper envelope, so the mean relative
    // error against the instantaneous µ(t) stays bounded, not tiny).
    cells.push(Cell {
        scheme: SchemeSpec::nimbus_estmu(),
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Sinusoid {
            amplitude_frac: 0.25,
            period_s: 20.0,
        },
        seed: 7,
        path: PathSpec::single(),
        duration_s: 40.0,
        steady_start_s: 15.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(20.0),
            max_mu_error: Some(0.35),
            ..Invariants::default()
        },
    });

    // Varying link, detector stability: alone on a ±10% oscillating link
    // there is nothing elastic, and the oscillation (0.1 Hz) is far from the
    // pulse frequency (5 Hz) — Nimbus must hold delay mode.  (At ±25% the
    // µ-error leaks the flow's own pulse into ẑ and the detector degrades;
    // the `varying_detector` experiment quantifies that cliff.)
    cells.push(Cell {
        scheme: SchemeSpec::nimbus(),
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Sinusoid {
            amplitude_frac: 0.1,
            period_s: 10.0,
        },
        seed: 8,
        path: PathSpec::single(),
        duration_s: 40.0,
        steady_start_s: 10.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(35.0),
            max_queue_delay_ms: Some(40.0),
            min_delay_mode_fraction: Some(0.8),
            ..Invariants::default()
        },
    });

    // Varying link, rate step: Cubic and Nimbus must both follow a 96→48
    // Mbit/s step — post-step throughput near the new µ, not the old one.
    for scheme in [SchemeSpec::cubic(), SchemeSpec::nimbus()] {
        cells.push(Cell {
            scheme,
            cross: CrossTraffic::None,
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Step {
                at_s: 15.0,
                factor: 0.5,
            },
            seed: 9,
            path: PathSpec::single(),
            duration_s: 40.0,
            steady_start_s: 22.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(35.0),
                max_throughput_mbps: Some(50.0),
                ..Invariants::default()
            },
        });
    }

    cells
}

/// The multi-hop path cells appended to the paper-invariant matrix: a fixed
/// secondary bottleneck, a *moving* bottleneck (anti-phase steps on hops 0
/// and 1) and learned-µ tracking of the path minimum.  Split out so
/// path-focused tests can run exactly this slice of the matrix.
pub fn multihop_cells() -> Vec<Cell> {
    let mut cells = Vec::new();

    // Fixed secondary bottleneck at 60% of the base rate: the path minimum
    // (28.8 Mbit/s) caps throughput for both schemes; Cubic bufferbloats the
    // tight hop's 100 ms buffer while Nimbus (alone, nothing elastic) must
    // keep the path queues low and hold delay mode.
    cells.push(Cell {
        scheme: SchemeSpec::nimbus(),
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Constant,
        path: PathSpec::with_secondary(0.6),
        seed: 21,
        duration_s: 40.0,
        steady_start_s: 10.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(20.0),
            max_throughput_mbps: Some(30.0),
            max_queue_delay_ms: Some(40.0),
            min_delay_mode_fraction: Some(0.8),
            ..Invariants::default()
        },
    });
    cells.push(Cell {
        scheme: SchemeSpec::cubic(),
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Constant,
        path: PathSpec::with_secondary(0.6),
        seed: 21,
        duration_s: 40.0,
        steady_start_s: 10.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(24.0),
            max_throughput_mbps: Some(30.0),
            min_queue_delay_ms: Some(40.0),
            ..Invariants::default()
        },
    });

    // Moving bottleneck: hop 0 steps 48 → 24 Mbit/s at t = 15 s while hop 1
    // steps 24 → 48 Mbit/s — the path minimum is 24 Mbit/s throughout but the
    // hop imposing it swaps sides.  Throughput must track the (unchanged)
    // minimum across the swap, and Nimbus — alone, nothing elastic — must not
    // mistake the migrating queue for elastic cross traffic (measured stable:
    // delay-mode fraction 1.00, path queueing delay ~13 ms).
    for scheme in [SchemeSpec::cubic(), SchemeSpec::nimbus()] {
        let nimbus = scheme.is_nimbus();
        cells.push(Cell {
            scheme,
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Step {
                at_s: 15.0,
                factor: 0.5,
            },
            path: PathSpec::moving_bottleneck(0.5, 15.0),
            seed: 25,
            duration_s: 40.0,
            steady_start_s: 10.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(18.0),
                max_throughput_mbps: Some(26.0),
                min_delay_mode_fraction: if nimbus { Some(0.85) } else { None },
                max_queue_delay_ms: if nimbus { Some(40.0) } else { None },
                ..Invariants::default()
            },
        });
    }

    // Learned µ on a two-hop path whose *non*-bottleneck first hop oscillates
    // ±10%: the estimate must track the constant 28.8 Mbit/s path minimum,
    // not the noisy 48 Mbit/s first hop (which would be a ~67% error).
    // Measured tracking error is ~0; the 0.15 ceiling leaves slack while
    // still ruling out any first-hop capture.
    cells.push(Cell {
        scheme: SchemeSpec::nimbus_estmu(),
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Sinusoid {
            amplitude_frac: 0.1,
            period_s: 10.0,
        },
        path: PathSpec::with_secondary(0.6),
        seed: 27,
        duration_s: 40.0,
        steady_start_s: 15.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(18.0),
            max_mu_error: Some(0.15),
            ..Invariants::default()
        },
    });

    // Two simultaneously near-saturated hops (ROADMAP PR 3 follow-on): an
    // elastic Cubic competitor confined to hop 0 contends with Nimbus for
    // the 48 Mbit/s first hop, while hop 1 at 50% (24 Mbit/s) caps whatever
    // Nimbus wins there — at the fair hop-0 split both hops carry a standing
    // queue at once.  Nimbus must still recognize the hop-0 competition as
    // elastic and fight for (and hold) roughly the hop-1 cap.
    cells.push(Cell {
        scheme: SchemeSpec::nimbus(),
        cross: CrossTraffic::ElasticAtHops {
            spec: SchemeSpec::cubic(),
            enter_hop: 0,
            exit_hop: 0,
        },
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Constant,
        path: PathSpec::with_secondary(0.5),
        seed: 29,
        duration_s: 45.0,
        steady_start_s: 15.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(10.0),
            max_throughput_mbps: Some(26.0),
            must_enter_competitive: true,
            ..Invariants::default()
        },
    });

    // Elastic cross traffic confined to the *non*-bottleneck hop (ROADMAP
    // PR 3 follow-on): the path's nominal bottleneck is hop 1 at 60%
    // (28.8 Mbit/s), but a backlogged Cubic on hop 0 pushes Nimbus's hop-0
    // share below that — elasticity must be detected even though it never
    // touches the nominal bottleneck queue.
    cells.push(Cell {
        scheme: SchemeSpec::nimbus(),
        cross: CrossTraffic::ElasticAtHops {
            spec: SchemeSpec::cubic(),
            enter_hop: 0,
            exit_hop: 0,
        },
        link_rate_bps: 48e6,
        schedule: LinkScheduleSpec::Constant,
        path: PathSpec::with_secondary(0.6),
        seed: 31,
        duration_s: 45.0,
        steady_start_s: 15.0,
        ecn: EcnSpec::Off,
        invariants: Invariants {
            min_throughput_mbps: Some(10.0),
            max_throughput_mbps: Some(30.0),
            must_enter_competitive: true,
            ..Invariants::default()
        },
    });

    cells
}

/// Matrix cells exercising wrapper compositions the closed `Scheme` enum
/// could not express: a NewReno-competitive Nimbus, a Copa-delay wrapper
/// with runtime-learned µ, heterogeneous three-way competition, and a
/// curated built-in rate trace.  Each cell asserts paper invariants, so the
/// compositional builder path is gated on *behaviour*, not just on
/// construction succeeding.
pub fn spec_combination_cells() -> Vec<Cell> {
    vec![
        // nimbus(competitive=reno) vs an elastic Cubic competitor: the
        // wrapper must detect elasticity and the NewReno inner scheme must
        // hold a useful share of the 48 Mbit/s link.
        Cell {
            scheme: SchemeSpec::nimbus().with_competitive(TcpScheme::NewReno),
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 35,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(10.0),
                max_delay_mode_fraction: Some(0.9),
                must_enter_competitive: true,
                ..Invariants::default()
            },
        },
        // nimbus(delay=copa,mu=learned) alone: the learned µ must settle on
        // the true rate and the Copa delay mode must keep the queue near
        // empty at full throughput with nothing elastic around.  (On an
        // oscillating link every learned-µ wrapper currently loses delay
        // mode — the µ error leaks the pulse into ẑ; see ROADMAP.)
        Cell {
            scheme: SchemeSpec::nimbus_copa().with_learned_mu(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 36,
            duration_s: 40.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(40.0),
                max_queue_delay_ms: Some(20.0),
                max_mu_error: Some(0.1),
                min_delay_mode_fraction: Some(0.9),
                ..Invariants::default()
            },
        },
        // Heterogeneous competition on one bottleneck: Nimbus vs standalone
        // Copa vs Cubic.  The Cubic competitor makes the mix elastic, so
        // Nimbus must switch and keep a useful share of the three-way split.
        Cell {
            scheme: SchemeSpec::nimbus(),
            cross: CrossTraffic::Mix {
                specs: vec![SchemeSpec::copa(), SchemeSpec::cubic()],
            },
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 37,
            duration_s: 45.0,
            steady_start_s: 15.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(12.0),
                must_enter_competitive: true,
                ..Invariants::default()
            },
        },
        // A curated built-in trace (Wi-Fi-like variation): Cubic must keep
        // filling the moving pipe.
        Cell {
            scheme: SchemeSpec::cubic(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::NamedTrace {
                name: "wifi".to_string(),
            },
            path: PathSpec::single(),
            seed: 38,
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(25.0),
                ..Invariants::default()
            },
        },
        // The cellular-like trace with its deep fade: guards the
        // double-timeout go-back-N recovery (a wedged flow reads ~0 here;
        // see `tests/trace_links.rs` for the minimized repro).
        Cell {
            scheme: SchemeSpec::cubic(),
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::NamedTrace {
                name: "cellular".to_string(),
            },
            path: PathSpec::single(),
            seed: 39,
            duration_s: 30.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants {
                min_throughput_mbps: Some(15.0),
                ..Invariants::default()
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_well_formed() {
        let cells = paper_invariant_matrix();
        assert!(cells.len() >= 12, "matrix must cover at least 12 cells");
        let mut names: Vec<String> = cells.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cells.len(), "cell names must be unique");
        // Every cell asserts at least one invariant.
        for c in &cells {
            let inv = &c.invariants;
            let any = inv.min_throughput_mbps.is_some()
                || inv.max_throughput_mbps.is_some()
                || inv.max_queue_delay_ms.is_some()
                || inv.min_queue_delay_ms.is_some()
                || inv.min_delay_mode_fraction.is_some()
                || inv.max_delay_mode_fraction.is_some()
                || inv.max_mu_error.is_some()
                || inv.must_enter_competitive;
            assert!(any, "cell {} asserts nothing", c.name());
        }
    }

    #[test]
    fn invariant_checks_fire() {
        let m = SingleFlowMetrics {
            label: "x".to_string(),
            mean_throughput_mbps: 10.0,
            mean_rtt_ms: 60.0,
            median_rtt_ms: 55.0,
            mean_queue_delay_ms: 50.0,
            median_queue_delay_ms: 45.0,
            throughput_series: Vec::new(),
            queue_delay_series: Vec::new(),
            rtt_series: Vec::new(),
            rtt_samples_ms: Vec::new(),
            throughput_samples_mbps: Vec::new(),
            delay_mode_fraction: 0.4,
            mode_log: Vec::new(),
            eta_series: Vec::new(),
            mu_series: Vec::new(),
            mu_tracking_error: f64::NAN,
        };
        let inv = Invariants {
            min_throughput_mbps: Some(20.0),
            max_queue_delay_ms: Some(40.0),
            min_delay_mode_fraction: Some(0.5),
            must_enter_competitive: true,
            ..Invariants::default()
        };
        let violations = inv.check(SchemeSpec::nimbus(), &m);
        assert_eq!(violations.len(), 4, "{violations:?}");
        let ok = Invariants {
            max_throughput_mbps: Some(20.0),
            min_queue_delay_ms: Some(40.0),
            ..Invariants::default()
        };
        assert!(ok.check(SchemeSpec::cubic(), &m).is_empty());
    }

    #[test]
    #[ignore = "calibration helper, not a regression test"]
    fn calibrate_new_cells() {
        let mut cells = fleet_cells();
        cells.push(estimator_cells().pop().unwrap());
        let outcomes = run_matrix(&cells);
        println!("{}", matrix_report(&outcomes));
        for o in &outcomes {
            println!(
                "{}: competitive={} events={}",
                o.name,
                o.metrics.mode_log.iter().any(|(_, m)| m == "competitive"),
                o.events
            );
        }
    }

    #[test]
    fn fingerprints_are_order_sensitive() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
