//! The congestion-control schemes an experiment can place on the monitored flow.

use nimbus_core::{DelayScheme, MultiflowConfig, NimbusConfig, NimbusController, TcpScheme};
use nimbus_netsim::FlowEndpoint;
use nimbus_transport::{BackloggedSource, CcKind, Sender, SenderConfig, Source};
use serde::{Deserialize, Serialize};

/// A congestion-control scheme under test (the flavours compared in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Nimbus with Cubic as the competitive scheme and BasicDelay for delay control.
    NimbusCubicBasicDelay,
    /// Nimbus with Cubic and Copa's default mode for delay control.
    NimbusCubicCopa,
    /// Nimbus with Cubic and Vegas for delay control.
    NimbusCubicVegas,
    /// Nimbus's delay-control algorithm alone (no mode switching) — "Nimbus delay".
    NimbusDelayOnly,
    /// Nimbus with Cubic + BasicDelay but no configured link rate: µ is
    /// learned at runtime from the max receive rate (§4.2), which is what
    /// time-varying-link scenarios exercise.
    NimbusEstimatedMu,
    /// TCP Cubic.
    Cubic,
    /// TCP NewReno.
    NewReno,
    /// TCP Vegas.
    Vegas,
    /// Copa (its own mode switching).
    Copa,
    /// BBR.
    Bbr,
    /// PCC-Vivace.
    Vivace,
    /// Compound TCP.
    Compound,
}

impl Scheme {
    /// All schemes plotted in Fig. 8/9.
    pub fn headline_set() -> Vec<Scheme> {
        vec![
            Scheme::NimbusCubicBasicDelay,
            Scheme::Cubic,
            Scheme::Bbr,
            Scheme::Vegas,
            Scheme::Copa,
            Scheme::Vivace,
        ]
    }

    /// A short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::NimbusCubicBasicDelay => "nimbus",
            Scheme::NimbusCubicCopa => "nimbus-copa",
            Scheme::NimbusCubicVegas => "nimbus-vegas",
            Scheme::NimbusDelayOnly => "nimbus-delay",
            Scheme::NimbusEstimatedMu => "nimbus-estmu",
            Scheme::Cubic => "cubic",
            Scheme::NewReno => "newreno",
            Scheme::Vegas => "vegas",
            Scheme::Copa => "copa",
            Scheme::Bbr => "bbr",
            Scheme::Vivace => "pcc-vivace",
            Scheme::Compound => "compound",
        }
    }

    /// Whether this scheme is a Nimbus variant (whose controller exposes a
    /// mode log / detector).
    pub fn is_nimbus(&self) -> bool {
        matches!(
            self,
            Scheme::NimbusCubicBasicDelay
                | Scheme::NimbusCubicCopa
                | Scheme::NimbusCubicVegas
                | Scheme::NimbusDelayOnly
                | Scheme::NimbusEstimatedMu
        )
    }

    /// Build a Nimbus configuration for this scheme on a link of `mu_bps`.
    pub fn nimbus_config(&self, mu_bps: f64, seed: u64) -> Option<NimbusConfig> {
        let base = NimbusConfig::default_for_link(mu_bps).with_seed(seed);
        match self {
            Scheme::NimbusCubicBasicDelay => Some(base),
            Scheme::NimbusCubicCopa => Some(base.with_delay_scheme(DelayScheme::CopaDefault)),
            Scheme::NimbusCubicVegas => Some(base.with_delay_scheme(DelayScheme::Vegas)),
            Scheme::NimbusDelayOnly => {
                // Delay-only: never pulse into competitive mode by setting an
                // unreachable elasticity threshold.
                let mut cfg = base;
                cfg.elasticity.eta_threshold = f64::INFINITY;
                Some(cfg)
            }
            Scheme::NimbusEstimatedMu => {
                // Learn µ at runtime (BasicDelay keeps paper defaults derived
                // from the nominal rate; the estimator and pulse amplitude
                // follow the learned value).
                let mut cfg = base;
                cfg.mu_bps = None;
                Some(cfg)
            }
            _ => None,
        }
    }

    /// Instantiate a backlogged monitored flow running this scheme.
    ///
    /// `mu_bps` is the bottleneck rate (needed by Nimbus variants), `seed`
    /// drives any randomized behaviour, and `multiflow` enables the
    /// pulser/watcher protocol on Nimbus variants.
    pub fn build_endpoint(
        &self,
        mu_bps: f64,
        seed: u64,
        multiflow: Option<MultiflowConfig>,
    ) -> Box<dyn FlowEndpoint> {
        self.build_endpoint_with_source(mu_bps, seed, multiflow, Box::new(BackloggedSource))
    }

    /// Instantiate a monitored flow running this scheme over a custom source.
    pub fn build_endpoint_with_source(
        &self,
        mu_bps: f64,
        seed: u64,
        multiflow: Option<MultiflowConfig>,
        source: Box<dyn Source>,
    ) -> Box<dyn FlowEndpoint> {
        let sender_cfg = SenderConfig::labelled(self.label());
        let cc: Box<dyn nimbus_transport::CongestionControl> = match self {
            Scheme::NimbusCubicBasicDelay
            | Scheme::NimbusCubicCopa
            | Scheme::NimbusCubicVegas
            | Scheme::NimbusDelayOnly
            | Scheme::NimbusEstimatedMu => {
                let mut cfg = self.nimbus_config(mu_bps, seed).unwrap();
                if let Some(mf) = multiflow {
                    cfg = cfg.with_multiflow(mf);
                }
                Box::new(NimbusController::new(cfg))
            }
            Scheme::Cubic => CcKind::Cubic.build(1500),
            Scheme::NewReno => CcKind::NewReno.build(1500),
            Scheme::Vegas => CcKind::Vegas.build(1500),
            Scheme::Copa => CcKind::Copa.build(1500),
            Scheme::Bbr => CcKind::Bbr.build(1500),
            Scheme::Vivace => CcKind::Vivace.build(1500),
            Scheme::Compound => CcKind::Compound.build(1500),
        };
        Box::new(Sender::new(sender_cfg, cc, source))
    }

    /// Placeholder for the unused `TcpScheme` import (kept for configuration
    /// completeness: Nimbus variants could also use NewReno competitively).
    pub fn competitive_scheme(&self) -> Option<TcpScheme> {
        if self.is_nimbus() {
            Some(TcpScheme::Cubic)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_builds_an_endpoint() {
        for s in [
            Scheme::NimbusCubicBasicDelay,
            Scheme::NimbusCubicCopa,
            Scheme::NimbusCubicVegas,
            Scheme::NimbusDelayOnly,
            Scheme::NimbusEstimatedMu,
            Scheme::Cubic,
            Scheme::NewReno,
            Scheme::Vegas,
            Scheme::Copa,
            Scheme::Bbr,
            Scheme::Vivace,
            Scheme::Compound,
        ] {
            let ep = s.build_endpoint(96e6, 1, None);
            assert_eq!(ep.label(), s.label());
        }
    }

    #[test]
    fn nimbus_configs_only_for_nimbus_variants() {
        assert!(Scheme::NimbusCubicBasicDelay
            .nimbus_config(96e6, 1)
            .is_some());
        assert!(Scheme::Cubic.nimbus_config(96e6, 1).is_none());
        assert!(Scheme::NimbusCubicBasicDelay.is_nimbus());
        assert!(!Scheme::Bbr.is_nimbus());
    }

    #[test]
    fn headline_set_covers_the_paper_baselines() {
        let set = Scheme::headline_set();
        assert!(set.contains(&Scheme::Cubic));
        assert!(set.contains(&Scheme::Bbr));
        assert!(set.contains(&Scheme::Copa));
        assert!(set.contains(&Scheme::Vivace));
    }
}
