//! The compositional scheme algebra: what congestion control runs on a flow.
//!
//! # Architecture
//!
//! The paper's central claim is that elasticity detection is a *building
//! block*: Nimbus is not one congestion-control algorithm but a **wrapper**
//! that layers the pulser/detector machinery over two inner controllers — an
//! arbitrary TCP-competitive scheme and an arbitrary delay-mode scheme — and
//! switches between them (§4).  The public API here mirrors that directly:
//!
//! * [`SchemeSpec::Bare`] — a standalone CCA ([`CcKind`]): `cubic`, `reno`,
//!   `vegas`, `copa`, `bbr`, `vivace`, `compound`, `constant(<rate>)`, …
//! * [`SchemeSpec::Nimbus`] — the wrapper, parameterized by a
//!   [`NimbusSpec`]: which competitive scheme, which delay scheme, whether µ
//!   is configured or learned at runtime (§4.2), and whether mode switching
//!   is enabled at all (the paper's "Nimbus delay" baseline disables it).
//!
//! Every spec is **string-parseable** ([`std::str::FromStr`]) and prints
//! back to its canonical form ([`std::fmt::Display`]), so CLI flags, sweep
//! axes and per-flow scenario entries all take the same grammar:
//!
//! ```text
//! cubic                                   a bare CCA
//! constant(24M)                           CBR cross traffic at 24 Mbit/s
//! nimbus                                  the paper's default wrapper
//! nimbus(competitive=reno)                wrap NewReno instead of Cubic
//! nimbus(competitive=dctcp)               DCTCP competitive mode (L4S paths)
//! nimbus(delay=copa,mu=learned)           Copa delay mode, runtime-learned µ
//! nimbus(mu=learned(probe=3))             learned µ with probe-up epochs
//! nimbus(mu=learned(probe=3,gain=4))      ... pacing at 4x during probes
//! nimbus(mu=learned,zfilter=adaptive)     µ-error-aware detection thresholds
//! nimbus(zfilter=notch(freq=0.1))         notch ẑ at the link frequency
//! nimbus(switch=never)                    delay mode only ("Nimbus delay")
//! ```
//!
//! The `mu=`/`zfilter=` axes select a µ-estimation strategy and a
//! ẑ-conditioning stage from the pluggable estimation API
//! ([`nimbus_core::estimator`]); see that module for the strategy catalogue
//! and a worked "which estimator when" table.
//!
//! Result labels ([`SchemeSpec::label`]) are derived from the spec.  The
//! variant names of the long-gone pre-redesign `Scheme` enum survive as
//! parse-string aliases (`"NimbusCubicCopa"`, `"nimbus-copa"`, …) that map
//! onto specs producing byte-identical simulations (pinned by
//! `tests/scheme_spec.rs`), so pre-redesign serialized data still loads.

use nimbus_core::estimator::DEFAULT_MU_WINDOW_S;
use nimbus_core::{
    DelayScheme, LearnedMuConfig, MuEstimatorConfig, MultiflowConfig, NimbusConfig,
    NimbusController, ProbingConfig, TcpScheme, ZFilterConfig,
};
use nimbus_netsim::FlowEndpoint;
use nimbus_transport::{
    format_rate_bps, BackloggedSource, CcKind, CongestionControl, PathInfo, Sender, SenderConfig,
    Source,
};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Where the Nimbus wrapper gets the bottleneck rate µ from: configured up
/// front, or one of the pluggable learned-µ estimation strategies
/// ([`LearnedMuConfig`], §4.2 and beyond).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MuSpec {
    /// µ is configured up front from the scenario's nominal link rate.
    #[default]
    Configured,
    /// µ is learned at runtime (`mu=learned`, `mu=learned(probe=…)`, …).
    Learned(LearnedMuConfig),
}

impl MuSpec {
    /// The classic §4.2 max-filter learned µ (`mu=learned`).
    pub fn learned() -> Self {
        MuSpec::Learned(LearnedMuConfig::default())
    }

    /// Learned µ with probe-up epochs and the loss floor
    /// (`mu=learned(probe=…)`), at the default probing parameters.
    pub fn probing() -> Self {
        MuSpec::Learned(LearnedMuConfig::Probing(ProbingConfig::default()))
    }

    /// Whether µ is learned at runtime (any strategy).
    pub fn is_learned(&self) -> bool {
        matches!(self, MuSpec::Learned(_))
    }
}

/// Whether the Nimbus wrapper may switch into TCP-competitive mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchSpec {
    /// Follow the elasticity detector (the paper's Nimbus).
    #[default]
    Auto,
    /// Never switch: stay in delay mode forever ("Nimbus delay").
    Never,
}

/// The parameters of the Nimbus wrapper: elasticity detection layered over
/// an inner competitive scheme and an inner delay scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NimbusSpec {
    /// The inner TCP-competitive scheme (used when cross traffic is elastic).
    pub competitive: TcpScheme,
    /// The inner delay-controlling scheme (used when it is not).
    pub delay: DelayScheme,
    /// Where the bottleneck-rate estimate µ comes from.
    pub mu: MuSpec,
    /// ẑ conditioning between the estimator and the detector.
    pub zfilter: ZFilterConfig,
    /// Whether mode switching is enabled.
    pub switch: SwitchSpec,
}

impl Default for NimbusSpec {
    /// The paper's default wrapper: Cubic + BasicDelay, configured µ, raw ẑ,
    /// detector-driven switching.
    fn default() -> Self {
        NimbusSpec {
            competitive: TcpScheme::Cubic,
            delay: DelayScheme::BasicDelay,
            mu: MuSpec::Configured,
            zfilter: ZFilterConfig::None,
            switch: SwitchSpec::Auto,
        }
    }
}

/// A congestion-control scheme specification: either a bare CCA or the
/// Nimbus wrapper composed over inner CCAs.  See the [module docs](self)
/// for the grammar and the architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// The Nimbus wrapper (§4) around inner competitive/delay schemes.
    Nimbus(NimbusSpec),
    /// A standalone CCA with no elasticity detection.
    Bare(CcKind),
}

/// A scheme-spec parse failure, with an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(pub String);

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheme spec: {}", self.0)
    }
}

impl std::error::Error for ParseSchemeError {}

impl SchemeSpec {
    // ---- constructors ---------------------------------------------------

    /// The paper's default Nimbus: Cubic-competitive + BasicDelay,
    /// configured µ, detector-driven switching.
    pub fn nimbus() -> Self {
        SchemeSpec::Nimbus(NimbusSpec::default())
    }

    /// Nimbus with Copa's default mode as the delay scheme (`nimbus-copa`).
    pub fn nimbus_copa() -> Self {
        Self::nimbus().with_delay(DelayScheme::CopaDefault)
    }

    /// Nimbus with Vegas as the delay scheme (`nimbus-vegas`).
    pub fn nimbus_vegas() -> Self {
        Self::nimbus().with_delay(DelayScheme::Vegas)
    }

    /// Nimbus's delay controller alone, mode switching disabled
    /// (`nimbus-delay`).
    pub fn nimbus_delay_only() -> Self {
        Self::nimbus().delay_only()
    }

    /// Nimbus learning µ at runtime from the max receive rate
    /// (`nimbus-estmu`, §4.2).
    pub fn nimbus_estmu() -> Self {
        Self::nimbus().with_learned_mu()
    }

    /// Bare TCP Cubic.
    pub fn cubic() -> Self {
        SchemeSpec::Bare(CcKind::Cubic)
    }

    /// Bare TCP NewReno.
    pub fn newreno() -> Self {
        SchemeSpec::Bare(CcKind::NewReno)
    }

    /// Bare TCP Vegas.
    pub fn vegas() -> Self {
        SchemeSpec::Bare(CcKind::Vegas)
    }

    /// Bare Copa (its own mode switching).
    pub fn copa() -> Self {
        SchemeSpec::Bare(CcKind::Copa)
    }

    /// Bare BBR.
    pub fn bbr() -> Self {
        SchemeSpec::Bare(CcKind::Bbr)
    }

    /// Bare PCC-Vivace.
    pub fn vivace() -> Self {
        SchemeSpec::Bare(CcKind::Vivace)
    }

    /// Bare Compound TCP.
    pub fn compound() -> Self {
        SchemeSpec::Bare(CcKind::Compound)
    }

    /// Bare DCTCP (ECN mark-fraction reaction; negotiates ECN).
    pub fn dctcp() -> Self {
        SchemeSpec::Bare(CcKind::Dctcp)
    }

    /// A constant-bit-rate (inelastic) sender at `rate_bps`.
    pub fn constant(rate_bps: f64) -> Self {
        SchemeSpec::Bare(CcKind::ConstantRate(rate_bps))
    }

    // ---- builders (Nimbus only) ----------------------------------------

    fn map_nimbus(self, f: impl FnOnce(&mut NimbusSpec)) -> Self {
        match self {
            SchemeSpec::Nimbus(mut n) => {
                f(&mut n);
                SchemeSpec::Nimbus(n)
            }
            SchemeSpec::Bare(kind) => panic!(
                "scheme `{}` is a bare CCA; Nimbus options only apply to nimbus(...) specs",
                kind
            ),
        }
    }

    /// Replace the wrapper's inner TCP-competitive scheme.
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_competitive(self, competitive: TcpScheme) -> Self {
        self.map_nimbus(|n| n.competitive = competitive)
    }

    /// Replace the wrapper's inner delay-controlling scheme.
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_delay(self, delay: DelayScheme) -> Self {
        self.map_nimbus(|n| n.delay = delay)
    }

    /// Learn µ at runtime instead of configuring it (§4.2), with the
    /// classic max-filter strategy.
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_learned_mu(self) -> Self {
        self.map_nimbus(|n| n.mu = MuSpec::learned())
    }

    /// Learn µ with an arbitrary strategy (`mu=learned(…)`).
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_mu_strategy(self, strategy: LearnedMuConfig) -> Self {
        self.map_nimbus(|n| n.mu = MuSpec::Learned(strategy))
    }

    /// Learn µ with probe-up epochs and the loss floor at default parameters
    /// (`mu=learned(probe=3)`).
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_probing_mu(self) -> Self {
        self.map_nimbus(|n| n.mu = MuSpec::probing())
    }

    /// Learn µ with probe-up epochs that auto-quiesce below the given
    /// uncertainty floor (`mu=learned(probe=<interval>,quiesce=<floor>)`).
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_quiesced_probing_mu(self, interval_s: f64, floor: f64) -> Self {
        self.with_mu_strategy(LearnedMuConfig::Probing(ProbingConfig {
            probe_interval_s: interval_s,
            quiesce_uncertainty_floor: floor,
            ..ProbingConfig::default()
        }))
    }

    /// Install a ẑ-conditioning stage (`zfilter=…`).
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn with_z_filter(self, zfilter: ZFilterConfig) -> Self {
        self.map_nimbus(|n| n.zfilter = zfilter)
    }

    /// Disable mode switching (the "Nimbus delay" baseline).
    ///
    /// # Panics
    /// Panics on a bare (non-Nimbus) spec.
    pub fn delay_only(self) -> Self {
        self.map_nimbus(|n| n.switch = SwitchSpec::Never)
    }

    // ---- inspection -----------------------------------------------------

    /// All schemes plotted in Fig. 8/9.
    pub fn headline_set() -> Vec<SchemeSpec> {
        vec![
            Self::nimbus(),
            Self::cubic(),
            Self::bbr(),
            Self::vegas(),
            Self::copa(),
            Self::vivace(),
        ]
    }

    /// Whether this spec is a Nimbus wrapper (whose controller exposes a
    /// mode log / detector).
    pub fn is_nimbus(&self) -> bool {
        matches!(self, SchemeSpec::Nimbus(_))
    }

    /// Whether flows running this spec negotiate ECN (set ECT on their data
    /// packets so marking queues mark them instead of dropping): bare DCTCP,
    /// and Nimbus wrappers whose competitive scheme is DCTCP.  Other flows
    /// can still be forced onto ECN by the scenario's `ecn=` axis.
    pub fn uses_ecn(&self) -> bool {
        match self {
            SchemeSpec::Bare(kind) => matches!(kind, CcKind::Dctcp),
            SchemeSpec::Nimbus(n) => n.competitive == TcpScheme::Dctcp,
        }
    }

    /// Whether a backlogged flow running this spec reacts to competing
    /// traffic (CBR/unlimited senders do not; everything else does).
    pub fn is_elastic(&self) -> bool {
        match self {
            SchemeSpec::Nimbus(_) => true,
            SchemeSpec::Bare(kind) => !matches!(kind, CcKind::ConstantRate(_) | CcKind::Unlimited),
        }
    }

    /// A short label for result tables and cell names, derived from the
    /// spec.  Legacy combinations keep their historical labels (`nimbus`,
    /// `nimbus-copa`, `nimbus-estmu`, `cubic`, `pcc-vivace`, …); novel
    /// combinations compose suffixes (`nimbus-reno-copa-estmu`).
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::Bare(kind) => match kind {
                // The exact rate rendering (`cbr24M`, `cbr400k`) keeps
                // distinct CBR schemes distinct in name-keyed results.
                CcKind::ConstantRate(bps) => format!("cbr{}", format_rate_bps(*bps)),
                other => other.name().to_string(),
            },
            SchemeSpec::Nimbus(n) => {
                let mut label = String::from("nimbus");
                if n.switch == SwitchSpec::Never {
                    label.push_str("-delay");
                }
                match n.competitive {
                    TcpScheme::Cubic => {}
                    TcpScheme::NewReno => label.push_str("-reno"),
                    TcpScheme::Dctcp => label.push_str("-dctcp"),
                }
                match n.delay {
                    DelayScheme::BasicDelay => {}
                    DelayScheme::CopaDefault => label.push_str("-copa"),
                    DelayScheme::Vegas => label.push_str("-vegas"),
                }
                if let MuSpec::Learned(lc) = n.mu {
                    label.push_str(&learned_mu_label(&lc));
                }
                match n.zfilter {
                    ZFilterConfig::None => {}
                    ZFilterConfig::Notch { freq_hz, .. } => {
                        label.push_str(&format!("-notch{freq_hz}"));
                    }
                    ZFilterConfig::Adaptive { k } => {
                        if k == 8.0 {
                            label.push_str("-zadapt");
                        } else {
                            label.push_str(&format!("-zadapt{k}"));
                        }
                    }
                }
                label
            }
        }
    }

    // ---- building the sender stack --------------------------------------

    /// Build a Nimbus configuration for this spec on a link of `mu_bps`
    /// (`None` for bare specs).
    pub fn nimbus_config(&self, mu_bps: f64, seed: u64) -> Option<NimbusConfig> {
        let SchemeSpec::Nimbus(n) = self else {
            return None;
        };
        let mut cfg = NimbusConfig::default_for_link(mu_bps)
            .with_seed(seed)
            .with_tcp_scheme(n.competitive)
            .with_delay_scheme(n.delay);
        if let MuSpec::Learned(lc) = n.mu {
            cfg = cfg.with_mu_estimator(MuEstimatorConfig::Learned(lc));
        }
        if n.zfilter != ZFilterConfig::None {
            cfg = cfg.with_z_filter(n.zfilter);
        }
        if n.switch == SwitchSpec::Never {
            cfg = cfg.without_switching();
        }
        Some(cfg)
    }

    /// Build just the congestion controller for this spec (the piece a
    /// [`Sender`] is generic over).
    pub fn build_cc(
        &self,
        mu_bps: f64,
        seed: u64,
        multiflow: Option<MultiflowConfig>,
    ) -> Box<dyn CongestionControl> {
        match self {
            SchemeSpec::Nimbus(_) => {
                let mut cfg = self.nimbus_config(mu_bps, seed).expect("nimbus spec");
                if let Some(mf) = multiflow {
                    cfg = cfg.with_multiflow(mf);
                }
                Box::new(NimbusController::new(cfg))
            }
            SchemeSpec::Bare(kind) => kind.build(&PathInfo::new(1500)),
        }
    }

    /// Instantiate a backlogged flow endpoint running this spec.
    ///
    /// `mu_bps` is the path's nominal bottleneck rate (needed by Nimbus
    /// wrappers with configured µ), `seed` drives any randomized behaviour,
    /// and `multiflow` enables the pulser/watcher protocol on Nimbus specs.
    pub fn build_endpoint(
        &self,
        mu_bps: f64,
        seed: u64,
        multiflow: Option<MultiflowConfig>,
    ) -> Box<dyn FlowEndpoint> {
        self.build_endpoint_with_source(mu_bps, seed, multiflow, Box::new(BackloggedSource))
    }

    /// Instantiate a flow endpoint running this spec over a custom source.
    pub fn build_endpoint_with_source(
        &self,
        mu_bps: f64,
        seed: u64,
        multiflow: Option<MultiflowConfig>,
        source: Box<dyn Source>,
    ) -> Box<dyn FlowEndpoint> {
        self.build_endpoint_labelled(&self.label(), mu_bps, seed, multiflow, source)
    }

    /// Instantiate a flow endpoint with an explicit sender label (cross
    /// flows conventionally label themselves `<scheme>-cross`).
    pub fn build_endpoint_labelled(
        &self,
        label: &str,
        mu_bps: f64,
        seed: u64,
        multiflow: Option<MultiflowConfig>,
        source: Box<dyn Source>,
    ) -> Box<dyn FlowEndpoint> {
        Box::new(Sender::new(
            SenderConfig::labelled(label),
            self.build_cc(mu_bps, seed, multiflow),
            source,
        ))
    }
}

// ---- canonical text form -------------------------------------------------

/// Label suffix for a learned-µ strategy: the legacy `-estmu` for the plain
/// default max filter, compact parameter slugs for everything else (only
/// non-default parameters are appended, so distinct strategies get distinct
/// cell names without default noise).
fn learned_mu_label(lc: &LearnedMuConfig) -> String {
    match lc {
        LearnedMuConfig::MaxFilter { window_s } if *window_s == DEFAULT_MU_WINDOW_S => {
            "-estmu".to_string()
        }
        LearnedMuConfig::MaxFilter { window_s } => format!("-estmu-w{window_s}"),
        LearnedMuConfig::Probing(p) => {
            let d = ProbingConfig::default();
            let mut s = format!("-estmu-probe{}", p.probe_interval_s);
            // Every non-default parameter gets a slug: two strategies that
            // differ in any knob must never share a cell/result name.
            if p.probe_gain != d.probe_gain {
                s.push_str(&format!("g{}", p.probe_gain));
            }
            if p.probe_duration_s != d.probe_duration_s {
                s.push_str(&format!("d{}", p.probe_duration_s));
            }
            if p.window_s != d.window_s {
                s.push_str(&format!("w{}", p.window_s));
            }
            if p.loss_backoff != d.loss_backoff {
                s.push_str(&format!("l{}", p.loss_backoff));
            }
            if p.backoff_interval_s != d.backoff_interval_s {
                s.push_str(&format!("li{}", p.backoff_interval_s));
            }
            if p.recent_window_s != d.recent_window_s {
                s.push_str(&format!("r{}", p.recent_window_s));
            }
            if p.cap_margin != d.cap_margin {
                s.push_str(&format!("c{}", p.cap_margin));
            }
            if p.quiesce_uncertainty_floor != d.quiesce_uncertainty_floor {
                s.push_str(&format!("q{}", p.quiesce_uncertainty_floor));
            }
            s
        }
    }
}

/// The canonical `mu=` option value (`learned`, `learned(probe=3)`, …).
fn mu_option(lc: &LearnedMuConfig) -> String {
    let mut args = Vec::new();
    match lc {
        LearnedMuConfig::MaxFilter { window_s } => {
            if *window_s != DEFAULT_MU_WINDOW_S {
                args.push(format!("window={window_s}"));
            }
        }
        LearnedMuConfig::Probing(p) => {
            let d = ProbingConfig::default();
            args.push(format!("probe={}", p.probe_interval_s));
            if p.probe_gain != d.probe_gain {
                args.push(format!("gain={}", p.probe_gain));
            }
            if p.probe_duration_s != d.probe_duration_s {
                args.push(format!("dur={}", p.probe_duration_s));
            }
            if p.window_s != d.window_s {
                args.push(format!("window={}", p.window_s));
            }
            if p.loss_backoff != d.loss_backoff {
                args.push(format!("loss={}", p.loss_backoff));
            }
            if p.backoff_interval_s != d.backoff_interval_s {
                args.push(format!("lossint={}", p.backoff_interval_s));
            }
            if p.recent_window_s != d.recent_window_s {
                args.push(format!("recent={}", p.recent_window_s));
            }
            if p.cap_margin != d.cap_margin {
                args.push(format!("cap={}", p.cap_margin));
            }
            if p.quiesce_uncertainty_floor != d.quiesce_uncertainty_floor {
                args.push(format!("quiesce={}", p.quiesce_uncertainty_floor));
            }
        }
    }
    if args.is_empty() {
        "mu=learned".to_string()
    } else {
        format!("mu=learned({})", args.join(","))
    }
}

/// The canonical `zfilter=` option value (`notch(freq=0.1)`, `adaptive`, …).
fn zfilter_option(zf: &ZFilterConfig) -> Option<String> {
    match zf {
        ZFilterConfig::None => None,
        ZFilterConfig::Notch { freq_hz, q } if *q == 0.7 => {
            Some(format!("zfilter=notch(freq={freq_hz})"))
        }
        ZFilterConfig::Notch { freq_hz, q } => Some(format!("zfilter=notch(freq={freq_hz},q={q})")),
        ZFilterConfig::Adaptive { k } if *k == 8.0 => Some("zfilter=adaptive".to_string()),
        ZFilterConfig::Adaptive { k } => Some(format!("zfilter=adaptive(k={k})")),
    }
}

impl fmt::Display for SchemeSpec {
    /// The canonical, re-parseable spec string: bare names for bare CCAs,
    /// `nimbus` for the default wrapper, `nimbus(key=value,...)` with only
    /// the non-default keys otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeSpec::Bare(kind) => write!(f, "{kind}"),
            SchemeSpec::Nimbus(n) => {
                let mut opts = Vec::new();
                match n.competitive {
                    TcpScheme::Cubic => {}
                    TcpScheme::NewReno => opts.push("competitive=reno".to_string()),
                    TcpScheme::Dctcp => opts.push("competitive=dctcp".to_string()),
                }
                match n.delay {
                    DelayScheme::BasicDelay => {}
                    DelayScheme::CopaDefault => opts.push("delay=copa".to_string()),
                    DelayScheme::Vegas => opts.push("delay=vegas".to_string()),
                }
                if let MuSpec::Learned(lc) = &n.mu {
                    opts.push(mu_option(lc));
                }
                if let Some(zf) = zfilter_option(&n.zfilter) {
                    opts.push(zf);
                }
                if n.switch == SwitchSpec::Never {
                    opts.push("switch=never".to_string());
                }
                if opts.is_empty() {
                    write!(f, "nimbus")
                } else {
                    write!(f, "nimbus({})", opts.join(","))
                }
            }
        }
    }
}

/// Split on `sep` at parenthesis depth zero only, so values like
/// `learned(probe=3,gain=2)` survive the option split intact.
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Split a `head(inner)` call form; a bare `head` has no inner args.
/// Errors if the parentheses are unbalanced.
fn split_call(value: &str) -> Result<(&str, Option<&str>), ParseSchemeError> {
    match value.split_once('(') {
        None => Ok((value, None)),
        Some((head, rest)) => {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseSchemeError(format!("`{value}` is missing the closing `)`")))?;
            Ok((head, Some(inner)))
        }
    }
}

/// Parse one positive-number parameter of a `mu=learned(...)` or
/// `zfilter=...(...)` call.
fn parse_positive(key: &str, value: &str, what: &str) -> Result<f64, ParseSchemeError> {
    let v: f64 = value
        .trim()
        .parse()
        .map_err(|_| ParseSchemeError(format!("invalid {what} `{key}={value}`: not a number")))?;
    if !(v > 0.0 && v.is_finite()) {
        return Err(ParseSchemeError(format!(
            "invalid {what} `{key}={value}`: must be a positive number"
        )));
    }
    Ok(v)
}

/// Parse the value of `mu=`: `configured`, `learned`, or a parameterised
/// `learned(probe=…, gain=…, dur=…, window=…, loss=…, lossint=…, recent=…,
/// cap=…, quiesce=…)` strategy.
fn parse_mu_value(value: &str) -> Result<MuSpec, ParseSchemeError> {
    let (head, inner) = split_call(value)?;
    match (head.trim(), inner) {
        ("configured", None) => Ok(MuSpec::Configured),
        ("learned", None) | ("estimated", None) => Ok(MuSpec::learned()),
        ("learned", Some(args)) | ("estimated", Some(args)) => {
            let mut window_s: Option<f64> = None;
            let mut probe: Option<f64> = None;
            let mut gain: Option<f64> = None;
            let mut dur: Option<f64> = None;
            let mut loss: Option<f64> = None;
            let mut lossint: Option<f64> = None;
            let mut recent: Option<f64> = None;
            let mut cap: Option<f64> = None;
            let mut quiesce: Option<f64> = None;
            for pair in args.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let Some((key, v)) = pair.split_once('=') else {
                    return Err(ParseSchemeError(format!(
                        "mu=learned option `{pair}` is not of the form key=value \
                         (expected probe=, gain=, dur=, window=, loss=, lossint=, \
                         recent=, cap=, or quiesce=)"
                    )));
                };
                let slot = match key.trim() {
                    "probe" => &mut probe,
                    "gain" => &mut gain,
                    "dur" => &mut dur,
                    "window" => &mut window_s,
                    "loss" => &mut loss,
                    "lossint" => &mut lossint,
                    "recent" => &mut recent,
                    "cap" => &mut cap,
                    "quiesce" => &mut quiesce,
                    k => {
                        return Err(ParseSchemeError(format!(
                            "unknown mu=learned option `{k}` (expected probe=<s>, gain=<x>, \
                             dur=<s>, window=<s>, loss=<frac>, lossint=<s>, recent=<s>, \
                             cap=<x>, quiesce=<frac>)"
                        )))
                    }
                };
                *slot = Some(parse_positive(key.trim(), v, "mu=learned parameter")?);
            }
            if probe.is_none()
                && (gain.is_some()
                    || dur.is_some()
                    || loss.is_some()
                    || lossint.is_some()
                    || recent.is_some()
                    || cap.is_some()
                    || quiesce.is_some())
            {
                return Err(ParseSchemeError(
                    "mu=learned probing parameters (gain/dur/loss/lossint) require probe=<interval>"
                        .to_string(),
                ));
            }
            match probe {
                None => Ok(MuSpec::Learned(LearnedMuConfig::MaxFilter {
                    window_s: window_s.unwrap_or(DEFAULT_MU_WINDOW_S),
                })),
                Some(interval) => {
                    let d = ProbingConfig::default();
                    let cfg = ProbingConfig {
                        window_s: window_s.unwrap_or(d.window_s),
                        probe_interval_s: interval,
                        probe_duration_s: dur.unwrap_or(d.probe_duration_s),
                        probe_gain: gain.unwrap_or(d.probe_gain),
                        loss_backoff: loss.unwrap_or(d.loss_backoff),
                        backoff_interval_s: lossint.unwrap_or(d.backoff_interval_s),
                        recent_window_s: recent.unwrap_or(d.recent_window_s),
                        cap_margin: cap.unwrap_or(d.cap_margin),
                        quiesce_uncertainty_floor: quiesce.unwrap_or(d.quiesce_uncertainty_floor),
                    };
                    if 2.0 * cfg.probe_duration_s >= cfg.probe_interval_s {
                        return Err(ParseSchemeError(format!(
                            "probe duration {} s plus its equal-length drain (during which \
                             ẑ is held) must be shorter than the probe interval {} s — \
                             use dur < probe/2",
                            cfg.probe_duration_s, cfg.probe_interval_s
                        )));
                    }
                    if cfg.probe_gain <= 1.0 {
                        return Err(ParseSchemeError(format!(
                            "probe gain {} must exceed 1 (a probe paces *above* the base rate)",
                            cfg.probe_gain
                        )));
                    }
                    if cfg.loss_backoff >= 1.0 {
                        return Err(ParseSchemeError(format!(
                            "loss backoff {} must be a decay factor below 1",
                            cfg.loss_backoff
                        )));
                    }
                    if cfg.quiesce_uncertainty_floor >= 1.0 {
                        return Err(ParseSchemeError(format!(
                            "quiesce floor {} is compared against the µ̂ uncertainty in \
                             [0, 1) — 1 or above would quiesce probing unconditionally",
                            cfg.quiesce_uncertainty_floor
                        )));
                    }
                    Ok(MuSpec::Learned(LearnedMuConfig::Probing(cfg)))
                }
            }
        }
        (v, _) => Err(ParseSchemeError(format!(
            "unknown mu mode `{v}` (expected configured, learned, or learned(probe=...))"
        ))),
    }
}

/// Parse the value of `zfilter=`: `none`, `notch(freq=…[,q=…])`, or
/// `adaptive[(k=…)]`.
fn parse_zfilter_value(value: &str) -> Result<ZFilterConfig, ParseSchemeError> {
    let (head, inner) = split_call(value)?;
    match (head.trim(), inner) {
        ("none", None) => Ok(ZFilterConfig::None),
        ("adaptive", None) => Ok(ZFilterConfig::adaptive()),
        ("adaptive", Some(args)) => {
            let mut k = match ZFilterConfig::adaptive() {
                ZFilterConfig::Adaptive { k } => k,
                _ => unreachable!(),
            };
            for pair in args.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                match pair.split_once('=') {
                    Some(("k", v)) => k = parse_positive("k", v, "zfilter parameter")?,
                    _ => {
                        return Err(ParseSchemeError(format!(
                            "unknown zfilter=adaptive option `{pair}` (expected k=<gain>)"
                        )))
                    }
                }
            }
            Ok(ZFilterConfig::Adaptive { k })
        }
        ("notch", Some(args)) => {
            let mut freq: Option<f64> = None;
            let mut q = 0.7;
            for pair in args.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                match pair.split_once('=') {
                    Some(("freq", v)) => {
                        freq = Some(parse_positive("freq", v, "zfilter parameter")?)
                    }
                    Some(("q", v)) => q = parse_positive("q", v, "zfilter parameter")?,
                    _ => {
                        return Err(ParseSchemeError(format!(
                            "unknown zfilter=notch option `{pair}` (expected freq=<hz>, q=<q>)"
                        )))
                    }
                }
            }
            let freq_hz = freq.ok_or_else(|| {
                ParseSchemeError(
                    "zfilter=notch requires the link-variation frequency: notch(freq=<hz>)"
                        .to_string(),
                )
            })?;
            Ok(ZFilterConfig::Notch { freq_hz, q })
        }
        ("notch", None) => Err(ParseSchemeError(
            "zfilter=notch requires the link-variation frequency: notch(freq=<hz>)".to_string(),
        )),
        (v, _) => Err(ParseSchemeError(format!(
            "unknown zfilter `{v}` (expected none, notch(freq=...), or adaptive)"
        ))),
    }
}

fn parse_nimbus_options(args: &str) -> Result<NimbusSpec, ParseSchemeError> {
    let mut spec = NimbusSpec::default();
    for pair in split_top_level(args, ',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let Some((key, value)) = pair.split_once('=') else {
            return Err(ParseSchemeError(format!(
                "nimbus option `{pair}` is not of the form key=value \
                 (expected competitive=, delay=, mu=, zfilter=, or switch=)"
            )));
        };
        match (key.trim(), value.trim()) {
            ("competitive", "cubic") => spec.competitive = TcpScheme::Cubic,
            ("competitive", "reno") | ("competitive", "newreno") => {
                spec.competitive = TcpScheme::NewReno
            }
            ("competitive", "dctcp") => spec.competitive = TcpScheme::Dctcp,
            ("competitive", v) => {
                return Err(ParseSchemeError(format!(
                    "unknown competitive scheme `{v}` (expected cubic, reno, or dctcp)"
                )))
            }
            ("delay", "basic") | ("delay", "basicdelay") => spec.delay = DelayScheme::BasicDelay,
            ("delay", "copa") => spec.delay = DelayScheme::CopaDefault,
            ("delay", "vegas") => spec.delay = DelayScheme::Vegas,
            ("delay", v) => {
                return Err(ParseSchemeError(format!(
                    "unknown delay scheme `{v}` (expected basic, copa, or vegas)"
                )))
            }
            ("mu", v) => spec.mu = parse_mu_value(v)?,
            ("zfilter", v) => spec.zfilter = parse_zfilter_value(v)?,
            ("switch", "auto") => spec.switch = SwitchSpec::Auto,
            ("switch", "never") | ("switch", "off") => spec.switch = SwitchSpec::Never,
            ("switch", v) => {
                return Err(ParseSchemeError(format!(
                    "unknown switch mode `{v}` (expected auto or never)"
                )))
            }
            (k, _) => {
                return Err(ParseSchemeError(format!(
                    "unknown nimbus option `{k}` \
                     (expected competitive=cubic|reno|dctcp, delay=basic|copa|vegas, \
                     mu=configured|learned|learned(probe=...), \
                     zfilter=none|notch(freq=...)|adaptive, switch=auto|never)"
                )))
            }
        }
    }
    Ok(spec)
}

impl FromStr for SchemeSpec {
    type Err = ParseSchemeError;

    /// Parse a spec string.  Accepts the canonical grammar (see the
    /// [module docs](self)), the legacy `Scheme` enum variant names
    /// (`NimbusCubicCopa`, `Vivace`, …) and the legacy labels
    /// (`nimbus-copa`, `nimbus-estmu`, `pcc-vivace`, …) as aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        // Legacy enum variant names (the old serde encoding of `Scheme`).
        match trimmed {
            "NimbusCubicBasicDelay" => return Ok(Self::nimbus()),
            "NimbusCubicCopa" => return Ok(Self::nimbus_copa()),
            "NimbusCubicVegas" => return Ok(Self::nimbus_vegas()),
            "NimbusDelayOnly" => return Ok(Self::nimbus_delay_only()),
            "NimbusEstimatedMu" => return Ok(Self::nimbus_estmu()),
            "Cubic" => return Ok(Self::cubic()),
            "NewReno" => return Ok(Self::newreno()),
            "Vegas" => return Ok(Self::vegas()),
            "Copa" => return Ok(Self::copa()),
            "Bbr" => return Ok(Self::bbr()),
            "Vivace" => return Ok(Self::vivace()),
            "Compound" => return Ok(Self::compound()),
            _ => {}
        }
        let lower = trimmed.to_ascii_lowercase();
        // Legacy labels for the Nimbus flavours.
        match lower.as_str() {
            "nimbus" => return Ok(Self::nimbus()),
            "nimbus-copa" => return Ok(Self::nimbus_copa()),
            "nimbus-vegas" => return Ok(Self::nimbus_vegas()),
            "nimbus-delay" => return Ok(Self::nimbus_delay_only()),
            "nimbus-estmu" => return Ok(Self::nimbus_estmu()),
            _ => {}
        }
        if let Some(rest) = lower.strip_prefix("nimbus(") {
            let args = rest.strip_suffix(')').ok_or_else(|| {
                ParseSchemeError(format!("`{trimmed}` is missing the closing `)`"))
            })?;
            return Ok(SchemeSpec::Nimbus(parse_nimbus_options(args)?));
        }
        // The constant(<rate>)/cbr(<rate>) grammar lives in `CcKind`'s own
        // `FromStr`; for those heads its diagnostics (bad rate, missing
        // paren) are the actionable message, while anything else gets the
        // spec-level overview of the whole grammar.
        match lower.parse::<CcKind>() {
            Ok(kind) => Ok(SchemeSpec::Bare(kind)),
            Err(e) if lower.starts_with("constant(") || lower.starts_with("cbr(") => {
                Err(ParseSchemeError(e))
            }
            Err(_) => Err(ParseSchemeError(format!(
                "unknown scheme `{trimmed}` (expected a bare CCA such as cubic, newreno, \
                     vegas, copa, bbr, vivace, compound, constant(<rate>), or a wrapper spec \
                     such as nimbus(competitive=reno,delay=copa,mu=learned))"
            ))),
        }
    }
}

impl Serialize for SchemeSpec {
    /// Serialized as the canonical spec string.
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for SchemeSpec {
    /// Deserialized from any string [`FromStr`] accepts — including the
    /// legacy `Scheme` variant names, so pre-redesign serialized data still
    /// loads.
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Str(s) => s.parse().map_err(|e: ParseSchemeError| serde::Error(e.0)),
            other => Err(serde::Error(format!(
                "expected scheme spec string, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_legacy() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::nimbus(),
            SchemeSpec::nimbus_copa(),
            SchemeSpec::nimbus_vegas(),
            SchemeSpec::nimbus_delay_only(),
            SchemeSpec::nimbus_estmu(),
            SchemeSpec::cubic(),
            SchemeSpec::newreno(),
            SchemeSpec::vegas(),
            SchemeSpec::copa(),
            SchemeSpec::bbr(),
            SchemeSpec::vivace(),
            SchemeSpec::compound(),
        ]
    }

    #[test]
    fn every_spec_builds_an_endpoint_with_its_label() {
        let mut specs = all_legacy();
        specs.push(SchemeSpec::nimbus().with_competitive(TcpScheme::NewReno));
        specs.push(SchemeSpec::nimbus_copa().with_learned_mu());
        specs.push(SchemeSpec::constant(12e6));
        for s in specs {
            let ep = s.build_endpoint(96e6, 1, None);
            assert_eq!(ep.label(), s.label());
        }
    }

    #[test]
    fn legacy_labels_are_preserved() {
        let expected = [
            "nimbus",
            "nimbus-copa",
            "nimbus-vegas",
            "nimbus-delay",
            "nimbus-estmu",
            "cubic",
            "newreno",
            "vegas",
            "copa",
            "bbr",
            "pcc-vivace",
            "compound",
        ];
        for (spec, want) in all_legacy().iter().zip(expected) {
            assert_eq!(spec.label(), want);
        }
    }

    #[test]
    fn novel_combinations_compose_labels() {
        assert_eq!(
            SchemeSpec::nimbus()
                .with_competitive(TcpScheme::NewReno)
                .label(),
            "nimbus-reno"
        );
        assert_eq!(
            SchemeSpec::nimbus()
                .with_competitive(TcpScheme::Dctcp)
                .label(),
            "nimbus-dctcp"
        );
        assert_eq!(SchemeSpec::dctcp().label(), "dctcp");
        assert_eq!(
            SchemeSpec::nimbus_copa().with_learned_mu().label(),
            "nimbus-copa-estmu"
        );
        assert_eq!(
            SchemeSpec::nimbus_delay_only()
                .with_delay(DelayScheme::Vegas)
                .label(),
            "nimbus-delay-vegas"
        );
        assert_eq!(SchemeSpec::constant(24e6).label(), "cbr24M");
        assert_eq!(SchemeSpec::constant(4e5).label(), "cbr400k");
    }

    #[test]
    fn display_round_trips_and_aliases_parse() {
        for spec in all_legacy() {
            let text = spec.to_string();
            let back: SchemeSpec = text.parse().unwrap();
            assert_eq!(back, spec, "`{text}` did not round-trip");
        }
        // Canonical strings for the interesting flavours.
        assert_eq!(SchemeSpec::nimbus().to_string(), "nimbus");
        assert_eq!(SchemeSpec::nimbus_copa().to_string(), "nimbus(delay=copa)");
        assert_eq!(
            SchemeSpec::nimbus_delay_only().to_string(),
            "nimbus(switch=never)"
        );
        // Legacy aliases.
        assert_eq!(
            "NimbusCubicCopa".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::nimbus_copa()
        );
        assert_eq!(
            "nimbus-estmu".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::nimbus_estmu()
        );
        assert_eq!(
            "pcc-vivace".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::vivace()
        );
        // Whitespace and case tolerance.
        assert_eq!(
            " Nimbus( Competitive = Reno , Mu = Learned ) "
                .parse::<SchemeSpec>()
                .unwrap(),
            SchemeSpec::nimbus()
                .with_competitive(TcpScheme::NewReno)
                .with_learned_mu()
        );
        assert_eq!(
            "constant(24M)".parse::<SchemeSpec>().unwrap(),
            SchemeSpec::constant(24e6)
        );
        // The ECN family round-trips.
        let prague = SchemeSpec::nimbus().with_competitive(TcpScheme::Dctcp);
        assert_eq!(prague.to_string(), "nimbus(competitive=dctcp)");
        assert_eq!(
            "nimbus(competitive=dctcp)".parse::<SchemeSpec>().unwrap(),
            prague
        );
        assert_eq!("dctcp".parse::<SchemeSpec>().unwrap(), SchemeSpec::dctcp());
        assert!(prague.uses_ecn());
        assert!(SchemeSpec::dctcp().uses_ecn());
        assert!(!SchemeSpec::nimbus().uses_ecn());
        assert!(!SchemeSpec::cubic().uses_ecn());
    }

    #[test]
    fn malformed_specs_report_actionable_errors() {
        let err = "nimbus(delay=reno)".parse::<SchemeSpec>().unwrap_err();
        assert!(err.0.contains("unknown delay scheme"), "{err}");
        let err = "nimbus(pulse=off)".parse::<SchemeSpec>().unwrap_err();
        assert!(err.0.contains("unknown nimbus option"), "{err}");
        let err = "nimbus(delay=copa".parse::<SchemeSpec>().unwrap_err();
        assert!(err.0.contains("closing"), "{err}");
        let err = "quic".parse::<SchemeSpec>().unwrap_err();
        assert!(err.0.contains("unknown scheme"), "{err}");
        let err = "constant(fast)".parse::<SchemeSpec>().unwrap_err();
        assert!(err.0.contains("invalid rate"), "{err}");
    }

    #[test]
    fn nimbus_configs_only_for_nimbus_specs() {
        assert!(SchemeSpec::nimbus().nimbus_config(96e6, 1).is_some());
        assert!(SchemeSpec::cubic().nimbus_config(96e6, 1).is_none());
        assert!(SchemeSpec::nimbus().is_nimbus());
        assert!(!SchemeSpec::bbr().is_nimbus());
        // The spec options actually reach the config.
        let cfg = SchemeSpec::nimbus()
            .with_competitive(TcpScheme::NewReno)
            .nimbus_config(96e6, 1)
            .unwrap();
        assert_eq!(cfg.tcp_scheme, TcpScheme::NewReno);
        let cfg = SchemeSpec::nimbus_delay_only()
            .nimbus_config(96e6, 1)
            .unwrap();
        assert!(cfg.elasticity.eta_threshold.is_infinite());
        let cfg = SchemeSpec::nimbus_estmu().nimbus_config(96e6, 1).unwrap();
        assert!(cfg.mu.is_learned());
        assert_eq!(cfg.mu, MuEstimatorConfig::learned());
    }

    #[test]
    fn headline_set_covers_the_paper_baselines() {
        let set = SchemeSpec::headline_set();
        assert!(set.contains(&SchemeSpec::cubic()));
        assert!(set.contains(&SchemeSpec::bbr()));
        assert!(set.contains(&SchemeSpec::copa()));
        assert!(set.contains(&SchemeSpec::vivace()));
    }

    #[test]
    fn legacy_enum_variant_names_still_parse() {
        // The `Scheme` enum is gone, but its serde strings must keep
        // loading: pre-redesign result files encode schemes by variant name.
        let aliases = [
            ("NimbusCubicBasicDelay", SchemeSpec::nimbus()),
            ("NimbusCubicCopa", SchemeSpec::nimbus_copa()),
            ("NimbusCubicVegas", SchemeSpec::nimbus_vegas()),
            ("NimbusDelayOnly", SchemeSpec::nimbus_delay_only()),
            ("NimbusEstimatedMu", SchemeSpec::nimbus_estmu()),
            ("Cubic", SchemeSpec::cubic()),
            ("NewReno", SchemeSpec::newreno()),
            ("Vegas", SchemeSpec::vegas()),
            ("Copa", SchemeSpec::copa()),
            ("Bbr", SchemeSpec::bbr()),
            ("Vivace", SchemeSpec::vivace()),
            ("Compound", SchemeSpec::compound()),
        ];
        for (name, want) in aliases {
            assert_eq!(name.parse::<SchemeSpec>().unwrap(), want, "{name}");
        }
    }

    #[test]
    fn serde_round_trips_including_legacy_strings() {
        let spec = SchemeSpec::nimbus_copa().with_learned_mu();
        let v = spec.to_value();
        assert_eq!(v, Value::Str("nimbus(delay=copa,mu=learned)".to_string()));
        assert_eq!(SchemeSpec::from_value(&v).unwrap(), spec);
        // The old enum's serde encoding (unit variant name) still loads.
        let legacy = Value::Str("NimbusEstimatedMu".to_string());
        assert_eq!(
            SchemeSpec::from_value(&legacy).unwrap(),
            SchemeSpec::nimbus_estmu()
        );
        assert!(SchemeSpec::from_value(&Value::Int(3)).is_err());
    }
}
