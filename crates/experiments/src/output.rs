//! Structured experiment results: named scalar rows plus named series, with
//! JSON/CSV emission.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The output of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment name (e.g. `fig14`).
    pub name: String,
    /// One-line description of what the paper figure/table shows.
    pub description: String,
    /// Scalar summary rows (label → value), e.g. per-scheme mean throughput.
    pub rows: BTreeMap<String, f64>,
    /// Named series, e.g. a throughput time series or a CDF curve.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
    /// Whether the quick (scaled-down) variant was run.
    pub quick: bool,
}

impl ExperimentResult {
    /// Create an empty result.
    pub fn new(name: &str, description: &str, quick: bool) -> Self {
        ExperimentResult {
            name: name.to_string(),
            description: description.to_string(),
            rows: BTreeMap::new(),
            series: BTreeMap::new(),
            quick,
        }
    }

    /// Add a scalar row.
    pub fn row(&mut self, label: &str, value: f64) -> &mut Self {
        self.rows.insert(label.to_string(), value);
        self
    }

    /// Add a series.
    pub fn add_series(&mut self, label: &str, series: Vec<(f64, f64)>) -> &mut Self {
        self.series.insert(label.to_string(), series);
        self
    }

    /// Fetch a row value (convenience for tests and cross-experiment checks).
    pub fn get(&self, label: &str) -> Option<f64> {
        self.rows.get(label).copied()
    }

    /// Render the scalar rows as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.name, self.description);
        let width = self.rows.keys().map(|k| k.len()).max().unwrap_or(10);
        for (k, v) in &self.rows {
            out.push_str(&format!("{k:width$}  {v:12.3}\n"));
        }
        for (k, s) in &self.series {
            out.push_str(&format!("series {k}: {} points\n", s.len()));
        }
        out
    }

    /// Write the result as JSON under `dir/<name>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        fs::write(&path, serde_json::to_string_pretty(self).unwrap())?;
        Ok(path)
    }

    /// Write every series as a CSV file `dir/<name>_<series>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (label, series) in &self.series {
            let safe: String = label
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("{}_{}.csv", self.name, safe));
            let mut body = String::from("x,y\n");
            for (x, y) in series {
                body.push_str(&format!("{x},{y}\n"));
            }
            fs::write(&path, body)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The default output directory (`target/experiments`).
    pub fn default_output_dir() -> PathBuf {
        PathBuf::from("target").join("experiments")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_series_round_trip() {
        let mut r = ExperimentResult::new("figX", "test figure", true);
        r.row("cubic_throughput_mbps", 88.5);
        r.row("nimbus_throughput_mbps", 90.1);
        r.add_series("cdf", vec![(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(r.get("cubic_throughput_mbps"), Some(88.5));
        assert_eq!(r.get("missing"), None);
        let table = r.to_table();
        assert!(table.contains("cubic_throughput_mbps"));
        assert!(table.contains("series cdf: 2 points"));
        // JSON round trip.
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "figX");
        assert_eq!(back.series["cdf"].len(), 2);
    }

    #[test]
    fn files_are_written() {
        let dir = std::env::temp_dir().join(format!("nimbus-exp-test-{}", std::process::id()));
        let mut r = ExperimentResult::new("figY", "io test", true);
        r.row("value", 1.0);
        r.add_series("line", vec![(0.0, 1.0), (2.0, 3.0)]);
        let json = r.write_json(&dir).unwrap();
        assert!(json.exists());
        let csvs = r.write_csv(&dir).unwrap();
        assert_eq!(csvs.len(), 1);
        let body = std::fs::read_to_string(&csvs[0]).unwrap();
        assert!(body.starts_with("x,y\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
