//! Scenario construction and post-run metric extraction shared by every figure.

use crate::scheme::{ParseSchemeError, SchemeSpec};
use nimbus_core::{Mode, MultiflowConfig, NimbusController};
use nimbus_netsim::{
    EcnMarking, FlowConfig, FlowEndpoint, FlowHandle, LinkConfig, LossModel, Network, QueueKind,
    RateSchedule, Recorder, SimConfig, Time,
};
use nimbus_traffic::fleet::{ArrivalProcess, FleetSpawner, FleetWorkloadConfig};
use nimbus_traffic::wan::CcKindSerde;
use nimbus_traffic::FlowSizeDistribution;
use nimbus_transport::{BackloggedSource, Sender, SenderConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How the bottleneck rate moves over a scenario, expressed relative to the
/// scenario's base `link_rate_bps` so the same shape can be swept across
/// link rates.  Converted to a concrete [`RateSchedule`] at network-build
/// time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkScheduleSpec {
    /// The classic fixed-rate link.
    Constant,
    /// One step to `factor·base` at `at_s` seconds.
    Step {
        /// When the step happens, seconds.
        at_s: f64,
        /// New rate as a fraction of the base rate.
        factor: f64,
    },
    /// An arbitrary staircase: at each `(t_s, factor)` the rate becomes
    /// `factor·base`.
    Steps {
        /// Sorted `(time_s, factor_of_base)` transitions.
        steps: Vec<(f64, f64)>,
    },
    /// `µ(t) = base·(1 + amplitude_frac·sin(2π·t/period_s))`.
    Sinusoid {
        /// Peak deviation as a fraction of the base rate.
        amplitude_frac: f64,
        /// Oscillation period, seconds.
        period_s: f64,
    },
    /// A trace of rate factors applied every `interval_s`, repeating.
    Trace {
        /// Duration of each trace sample, seconds.
        interval_s: f64,
        /// Per-interval rates as fractions of the base rate.
        factors: Vec<f64>,
    },
    /// One of the curated built-in traces shipped with the simulator
    /// ([`RateSchedule::builtin_trace`]): `cellular`, `wifi`, `step-outage`.
    NamedTrace {
        /// The built-in trace's name.
        name: String,
    },
    /// An external Mahimahi-format packet-delivery trace loaded from disk
    /// ([`RateSchedule::from_mahimahi_file`]).  Unlike every other family
    /// the trace carries *absolute* rates — the scenario's base rate does
    /// not scale it (it still sizes delay-specified buffers and is handed
    /// to configured-µ schemes as the nominal rate).
    TraceFile {
        /// Path to the trace file (one millisecond timestamp per line).
        path: String,
    },
}

impl LinkScheduleSpec {
    /// Materialize the schedule against a concrete base rate.
    pub fn to_schedule(&self, base_bps: f64) -> RateSchedule {
        match self {
            LinkScheduleSpec::Constant => RateSchedule::constant(base_bps),
            LinkScheduleSpec::Step { at_s, factor } => {
                RateSchedule::step(base_bps, Time::from_secs_f64(*at_s), factor * base_bps)
            }
            LinkScheduleSpec::Steps { steps } => RateSchedule::Steps {
                initial_bps: base_bps,
                steps: steps
                    .iter()
                    .map(|&(t_s, f)| (Time::from_secs_f64(t_s), f * base_bps))
                    .collect(),
            },
            LinkScheduleSpec::Sinusoid {
                amplitude_frac,
                period_s,
            } => RateSchedule::sinusoid(base_bps, *amplitude_frac, Time::from_secs_f64(*period_s)),
            LinkScheduleSpec::Trace {
                interval_s,
                factors,
            } => RateSchedule::trace(
                Time::from_secs_f64(*interval_s),
                factors.iter().map(|f| f * base_bps).collect(),
                true,
            ),
            LinkScheduleSpec::NamedTrace { name } => RateSchedule::builtin_trace(name, base_bps)
                .unwrap_or_else(|| {
                    panic!(
                        "unknown built-in trace `{name}` (available: {})",
                        RateSchedule::builtin_trace_names().join(", ")
                    )
                }),
            LinkScheduleSpec::TraceFile { path } => RateSchedule::from_mahimahi_file(path)
                .unwrap_or_else(|e| panic!("cannot load mahimahi trace: {e}")),
        }
    }

    /// A short slug for cell/result names (`const`, `step50@15`, `sin25p10`, …).
    pub fn label(&self) -> String {
        match self {
            LinkScheduleSpec::Constant => "const".to_string(),
            LinkScheduleSpec::Step { at_s, factor } => {
                format!("step{:.0}@{at_s:.0}", factor * 100.0)
            }
            LinkScheduleSpec::Steps { steps } => format!("steps{}", steps.len()),
            LinkScheduleSpec::Sinusoid {
                amplitude_frac,
                period_s,
            } => format!("sin{:.0}p{period_s:.0}", amplitude_frac * 100.0),
            LinkScheduleSpec::Trace { factors, .. } => format!("trace{}", factors.len()),
            LinkScheduleSpec::NamedTrace { name } => format!("trace-{name}"),
            LinkScheduleSpec::TraceFile { path } => {
                let stem = std::path::Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "file".to_string());
                format!("mm-{stem}")
            }
        }
    }
}

/// The `ecn=` axis of the scenario grammar: whether — and how — a hop marks
/// ECT packets instead of dropping them.
///
/// ```text
/// ecn=off            no marking (the default; ECN-capable flows are inert)
/// ecn=classic        RFC 3168-style marking at the AQM's drop points
/// ecn=l4s            L4S step marking at a 1 ms sojourn threshold (RFC 9331)
/// ecn=step(5ms)      step marking at an explicit sojourn threshold
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EcnSpec {
    /// No marking; ECT packets are treated exactly like NotEct ones.
    #[default]
    Off,
    /// Classic ECN: mark ECT packets where the queue would have dropped.
    Classic,
    /// L4S-style step marking at a sojourn-time threshold (seconds).
    Step {
        /// Queue sojourn above which every ECT packet is marked, seconds.
        threshold_s: f64,
    },
}

impl EcnSpec {
    /// The L4S profile: step marking at the RFC 9331-recommended 1 ms.
    pub fn l4s() -> Self {
        EcnSpec::Step { threshold_s: 0.001 }
    }

    /// Whether any marking is configured.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, EcnSpec::Off)
    }

    /// The netsim queue-level marking profile this spec materializes to.
    pub fn to_marking(&self) -> EcnMarking {
        match *self {
            EcnSpec::Off => EcnMarking::None,
            EcnSpec::Classic => EcnMarking::Classic,
            EcnSpec::Step { threshold_s } => EcnMarking::Step { threshold_s },
        }
    }

    /// A short slug for cell names: empty when off, `-ecn`, `-l4s`, or
    /// `-step<ms>ms`.
    pub fn label(&self) -> String {
        match *self {
            EcnSpec::Off => String::new(),
            EcnSpec::Classic => "-ecn".to_string(),
            EcnSpec::Step { threshold_s: 0.001 } => "-l4s".to_string(),
            EcnSpec::Step { threshold_s } => format!("-step{}ms", threshold_s * 1000.0),
        }
    }
}

impl fmt::Display for EcnSpec {
    /// Canonical re-parseable form: `off`, `classic`, `l4s` (the 1 ms step),
    /// or `step(<ms>ms)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EcnSpec::Off => write!(f, "off"),
            EcnSpec::Classic => write!(f, "classic"),
            EcnSpec::Step { threshold_s: 0.001 } => write!(f, "l4s"),
            EcnSpec::Step { threshold_s } => write!(f, "step({}ms)", threshold_s * 1000.0),
        }
    }
}

impl FromStr for EcnSpec {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "off" | "none" => return Ok(EcnSpec::Off),
            "classic" | "ecn" => return Ok(EcnSpec::Classic),
            "l4s" => return Ok(EcnSpec::l4s()),
            _ => {}
        }
        if let Some(rest) = t.strip_prefix("step(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseSchemeError(format!("`{s}` is missing the closing `)`")))?;
            let inner = inner.trim();
            let (num, scale) = if let Some(v) = inner.strip_suffix("ms") {
                (v, 1e-3)
            } else if let Some(v) = inner.strip_suffix('s') {
                (v, 1.0)
            } else {
                (inner, 1.0)
            };
            let v: f64 = num.trim().parse().map_err(|_| {
                ParseSchemeError(format!(
                    "invalid step threshold `{inner}` (expected e.g. step(1ms) or step(0.005s))"
                ))
            })?;
            if !(v > 0.0 && v.is_finite()) {
                return Err(ParseSchemeError(format!(
                    "step threshold `{inner}` must be a positive duration"
                )));
            }
            return Ok(EcnSpec::Step {
                threshold_s: v * scale,
            });
        }
        Err(ParseSchemeError(format!(
            "unknown ecn mode `{s}` (expected off, classic, l4s, or step(<ms>ms))"
        )))
    }
}

impl Serialize for EcnSpec {
    /// Serialized as the canonical `ecn=` string.
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for EcnSpec {
    /// Deserialized from the canonical string; `null` (a field absent from
    /// pre-ECN serialized scenarios) reads as `Off`.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(EcnSpec::Off),
            serde::Value::Str(s) => s.parse().map_err(|e: ParseSchemeError| serde::Error(e.0)),
            other => Err(serde::Error(format!(
                "expected ecn spec string, got {other:?}"
            ))),
        }
    }
}

/// One additional hop appended after the scenario's primary (hop-0)
/// bottleneck, described relative to the scenario's base `link_rate_bps` so
/// the same path shape can be swept across link rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopSpec {
    /// The hop's base rate as a fraction of the scenario's `link_rate_bps`
    /// (< 1.0 makes this hop the path's bottleneck).
    pub rate_factor: f64,
    /// How the hop's rate moves over the run, materialized against
    /// `rate_factor·link_rate_bps`.
    pub schedule: LinkScheduleSpec,
    /// Buffer size in seconds of this hop's line rate (drop-tail).
    pub buffer_s: f64,
    /// Propagation delay from the previous hop's output to this hop, seconds.
    pub prop_delay_s: f64,
    /// Whether this hop marks ECT packets instead of dropping (`ecn=` axis).
    pub ecn: EcnSpec,
}

impl HopSpec {
    /// A constant-rate drop-tail hop at `rate_factor·base` with 100 ms of
    /// buffering and 10 ms of upstream propagation.
    pub fn constant(rate_factor: f64) -> Self {
        HopSpec {
            rate_factor,
            schedule: LinkScheduleSpec::Constant,
            buffer_s: 0.1,
            prop_delay_s: 0.01,
            ecn: EcnSpec::Off,
        }
    }

    /// Replace the hop's schedule (builder style).
    pub fn with_schedule(mut self, schedule: LinkScheduleSpec) -> Self {
        self.schedule = schedule;
        self
    }

    /// Mark instead of dropping on this hop (builder style).
    pub fn with_ecn(mut self, ecn: EcnSpec) -> Self {
        self.ecn = ecn;
        self
    }
}

/// The shape of the forward path beyond the primary bottleneck: a (possibly
/// empty) chain of extra hops the packets traverse after hop 0.  The default
/// — no extra hops — is the paper's single-bottleneck dumbbell, and every
/// pre-path scenario is exactly a `PathSpec::single()` path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PathSpec {
    /// Hops appended after the primary bottleneck, in path order.
    pub extra_hops: Vec<HopSpec>,
}

impl PathSpec {
    /// The classic single-bottleneck path.
    pub fn single() -> Self {
        PathSpec::default()
    }

    /// A two-hop path with a constant secondary bottleneck at
    /// `rate_factor·link_rate_bps` downstream of the primary hop.
    pub fn with_secondary(rate_factor: f64) -> Self {
        PathSpec {
            extra_hops: vec![HopSpec::constant(rate_factor)],
        }
    }

    /// A two-hop *moving-bottleneck* path: at `swap_at_s` the primary hop
    /// steps down to `low_factor·base` while the secondary hop — which
    /// started at `low_factor·base` — steps up to full rate.  The path's
    /// minimum rate is `low_factor·base` throughout, but the hop imposing it
    /// changes, which is exactly the regime a single-link simulator cannot
    /// express.
    pub fn moving_bottleneck(low_factor: f64, swap_at_s: f64) -> Self {
        PathSpec {
            extra_hops: vec![HopSpec {
                rate_factor: low_factor,
                schedule: LinkScheduleSpec::Step {
                    at_s: swap_at_s,
                    factor: 1.0 / low_factor,
                },
                buffer_s: 0.1,
                prop_delay_s: 0.01,
                ecn: EcnSpec::Off,
            }],
        }
    }

    /// Total number of hops including the primary bottleneck.
    pub fn hop_count(&self) -> usize {
        1 + self.extra_hops.len()
    }

    /// The nominal bottleneck rate seen by a flow traversing hops
    /// `[enter, exit]` of this path (inclusive; `None` = the path's tail):
    /// the minimum base rate over exactly those hops.  Hop 0 is the primary
    /// bottleneck at `link_rate_bps`.
    pub fn nominal_mu_over_hops(
        &self,
        link_rate_bps: f64,
        enter: usize,
        exit: Option<usize>,
    ) -> f64 {
        let last = exit
            .unwrap_or(self.extra_hops.len())
            .min(self.extra_hops.len());
        let mut mu = f64::INFINITY;
        for hop in enter..=last {
            let rate = if hop == 0 {
                link_rate_bps
            } else {
                self.extra_hops[hop - 1].rate_factor * link_rate_bps
            };
            mu = mu.min(rate);
        }
        if mu.is_finite() {
            mu
        } else {
            link_rate_bps
        }
    }

    /// A short slug for cell/result names: empty for a single hop, otherwise
    /// e.g. `-2hop60` (two hops, tightest extra hop at 60% of base).
    pub fn label(&self) -> String {
        if self.extra_hops.is_empty() {
            return String::new();
        }
        let tightest = self
            .extra_hops
            .iter()
            .map(|h| h.rate_factor)
            .fold(f64::INFINITY, f64::min);
        let moving = self
            .extra_hops
            .iter()
            .any(|h| h.schedule != LinkScheduleSpec::Constant);
        format!(
            "-{}hop{:.0}{}",
            self.hop_count(),
            tightest * 100.0,
            if moving { "mv" } else { "" }
        )
    }
}

/// One cross-traffic flow described entirely by a [`SchemeSpec`], so a
/// scenario can place *any* scheme — a bare CCA, a CBR aggregate, or another
/// Nimbus wrapper — in competition with the monitored flow, on any segment
/// of the path.  This is what makes heterogeneous-competition scenarios
/// (e.g. nimbus vs. standalone Copa vs. Cubic on one bottleneck)
/// declarative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossFlowSpec {
    /// The scheme this flow runs.
    pub scheme: SchemeSpec,
    /// Flow label; defaults to `<scheme-label>-cross<index>`.
    pub label: Option<String>,
    /// When the flow starts, seconds.
    pub start_s: f64,
    /// When the application goes away, seconds (`None` = whole run).
    pub stop_s: Option<f64>,
    /// Propagation RTT, seconds.
    pub rtt_s: f64,
    /// The hop this flow enters the path at.
    pub entry_hop: usize,
    /// The last hop this flow traverses (`None` = the path's tail).
    pub exit_hop: Option<usize>,
    /// Whether this flow negotiates ECN (sets ECT on its packets).  `None`
    /// means automatic: ECN-native schemes (`dctcp`,
    /// `nimbus(competitive=dctcp)`) negotiate it, everything else follows
    /// the scenario's `ecn=` axis.
    pub ecn: Option<bool>,
}

impl CrossFlowSpec {
    /// A backlogged cross flow running `scheme` for the whole run on the
    /// whole path, 50 ms RTT.
    pub fn new(scheme: SchemeSpec) -> Self {
        CrossFlowSpec {
            scheme,
            label: None,
            start_s: 0.0,
            stop_s: None,
            rtt_s: 0.05,
            entry_hop: 0,
            exit_hop: None,
            ecn: None,
        }
    }

    /// Force ECN negotiation on or off for this flow (builder style).
    pub fn with_ecn(mut self, ecn: bool) -> Self {
        self.ecn = Some(ecn);
        self
    }

    /// Set the start time (builder style).
    pub fn starting_at(mut self, start_s: f64) -> Self {
        self.start_s = start_s;
        self
    }

    /// Stop the flow at `stop_s` (builder style).
    pub fn stopping_at(mut self, stop_s: f64) -> Self {
        self.stop_s = Some(stop_s);
        self
    }

    /// Confine the flow to hops `[enter, exit]` of the path (builder style).
    pub fn on_hops(mut self, enter: usize, exit: usize) -> Self {
        self.entry_hop = enter;
        self.exit_hop = Some(exit);
        self
    }

    /// Override the flow label (builder style).
    pub fn labelled(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// Materialize the flow against a scenario (`mu_bps` is the path's
    /// nominal bottleneck rate, for Nimbus wrappers with configured µ).
    pub fn build(
        &self,
        index: usize,
        mu_bps: f64,
        seed: u64,
    ) -> (FlowConfig, Box<dyn FlowEndpoint>) {
        let label = self
            .label
            .clone()
            .unwrap_or_else(|| format!("{}-cross{index}", self.scheme.label()));
        let cc_seed = seed.wrapping_mul(193).wrapping_add(index as u64);
        self.build_labelled(&label, mu_bps, cc_seed)
    }

    /// [`CrossFlowSpec::build`] with the label and controller seed fully
    /// resolved by the caller — the single engine behind every
    /// spec-described cross flow (the testkit's `CrossTraffic` families
    /// delegate here too, via `figures::scheme_cross_flow`).
    pub fn build_labelled(
        &self,
        label: &str,
        mu_bps: f64,
        cc_seed: u64,
    ) -> (FlowConfig, Box<dyn FlowEndpoint>) {
        let mut sender_cfg = SenderConfig::labelled(label);
        if let Some(stop) = self.stop_s {
            sender_cfg = sender_cfg.stopping_at(Time::from_secs_f64(stop));
        }
        let mut cfg = FlowConfig::cross(
            label,
            Time::from_secs_f64(self.rtt_s),
            self.scheme.is_elastic(),
        )
        .with_ecn(self.ecn.unwrap_or_else(|| self.scheme.uses_ecn()))
        .starting_at(Time::from_secs_f64(self.start_s))
        .entering_at(self.entry_hop);
        if let Some(exit) = self.exit_hop {
            cfg = cfg.exiting_at(exit);
        }
        let ep: Box<dyn FlowEndpoint> = Box::new(Sender::new(
            sender_cfg,
            self.scheme.build_cc(mu_bps, cc_seed, None),
            Box::new(BackloggedSource),
        ));
        (cfg, ep)
    }
}

/// An open-loop fleet workload riding on a scenario: a churning population
/// of finite flows (Poisson or bursty arrivals × heavy-tailed sizes) offered
/// at a fraction of the base link rate.  This is the `arrivals=`/`load=`
/// axis of the scenario grammar:
///
/// ```text
/// fleet(arrivals=poisson,load=0.5)
/// fleet(arrivals=bursty(alpha=1.5),load=0.3,mean=50k,cc=reno)
/// ```
///
/// Materialized into a [`FleetSpawner`] at network-build time; flows spawn
/// at their arrival instants and retire on completion, so the run only pays
/// for the concurrently active population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Interarrival process (`arrivals=poisson|bursty|bursty(alpha=…)`).
    pub arrivals: ArrivalProcess,
    /// Offered load as a fraction of the scenario's base link rate (`load=`).
    pub load: f64,
    /// Override the size distribution's mean flow size in bytes (`mean=`);
    /// `None` keeps the default CAIDA-like mixture (~100 kB mean).
    pub mean_flow_bytes: Option<f64>,
    /// Congestion control run by the fleet flows (`cc=cubic|reno`).
    pub cc: CcKindSerde,
}

impl FleetSpec {
    /// A Poisson fleet at the given offered-load fraction, default sizes,
    /// Cubic flows.
    pub fn poisson(load: f64) -> Self {
        FleetSpec {
            arrivals: ArrivalProcess::Poisson,
            load,
            mean_flow_bytes: None,
            cc: CcKindSerde::Cubic,
        }
    }

    /// A bursty (Pareto-interarrival) fleet at the given offered-load
    /// fraction, default shape.
    pub fn bursty(load: f64) -> Self {
        FleetSpec {
            arrivals: ArrivalProcess::Bursty {
                alpha: nimbus_traffic::fleet::DEFAULT_BURSTY_ALPHA,
            },
            load,
            mean_flow_bytes: None,
            cc: CcKindSerde::Cubic,
        }
    }

    /// Override the mean flow size (builder style).
    pub fn with_mean_flow_bytes(mut self, bytes: f64) -> Self {
        self.mean_flow_bytes = Some(bytes);
        self
    }

    /// Run the fleet over NewReno instead of Cubic (builder style).
    pub fn with_reno(mut self) -> Self {
        self.cc = CcKindSerde::NewReno;
        self
    }

    /// The size distribution this fleet samples from: the default mixture,
    /// linearly rescaled when `mean_flow_bytes` overrides the mean.
    pub fn size_distribution(&self) -> FlowSizeDistribution {
        let mut sizes = FlowSizeDistribution::default();
        if let Some(target_mean) = self.mean_flow_bytes {
            // Scaling every byte-dimensioned parameter by the same factor
            // scales the analytic mean exactly linearly.
            let factor = target_mean / sizes.mean_bytes();
            sizes.body_median_bytes *= factor;
            sizes.tail_min_bytes *= factor;
            sizes.max_bytes *= factor;
        }
        sizes
    }

    /// A short slug for cell names: `fleet-poisson-l50`, `fleet-bursty-l30-reno`.
    pub fn label(&self) -> String {
        let arrivals = match self.arrivals {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        };
        let mut s = format!("fleet-{arrivals}-l{:.0}", self.load * 100.0);
        if let Some(mean) = self.mean_flow_bytes {
            s.push_str(&format!("-m{:.0}k", mean / 1000.0));
        }
        if self.cc == CcKindSerde::NewReno {
            s.push_str("-reno");
        }
        s
    }

    /// Materialize the fleet against a scenario: arrivals over the whole run,
    /// offered load relative to `link_rate_bps`, workload seed derived from
    /// the scenario seed (distinct from the cross-flow controller seeds).
    pub fn build_spawner(&self, link_rate_bps: f64, duration_s: f64, seed: u64) -> FleetSpawner {
        FleetSpawner::new(FleetWorkloadConfig {
            offered_load_bps: self.load * link_rate_bps,
            arrivals: self.arrivals,
            sizes: self.size_distribution(),
            start_s: 0.0,
            stop_s: duration_s,
            base_rtt_s: 0.05,
            jitter_rtt: true,
            cc: self.cc,
            seed: seed.wrapping_mul(131).wrapping_add(29),
            elastic_threshold_bytes: 15_000,
        })
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet(arrivals=")?;
        match self.arrivals {
            ArrivalProcess::Poisson => write!(f, "poisson")?,
            ArrivalProcess::Bursty { alpha } => write!(f, "bursty(alpha={alpha})")?,
        }
        write!(f, ",load={}", self.load)?;
        if let Some(mean) = self.mean_flow_bytes {
            write!(f, ",mean={mean}")?;
        }
        if self.cc == CcKindSerde::NewReno {
            write!(f, ",cc=reno")?;
        }
        write!(f, ")")
    }
}

/// Parse a byte count with an optional `k`/`M` suffix (`50k` = 50 000).
fn parse_size_bytes(value: &str) -> Result<f64, ParseSchemeError> {
    let v = value.trim();
    let (digits, mult) = match v.strip_suffix(['k', 'K']) {
        Some(d) => (d, 1e3),
        None => match v.strip_suffix('M') {
            Some(d) => (d, 1e6),
            None => (v, 1.0),
        },
    };
    let n: f64 = digits
        .parse()
        .map_err(|_| ParseSchemeError(format!("invalid size `{value}`: not a number")))?;
    if !(n > 0.0 && n.is_finite()) {
        return Err(ParseSchemeError(format!(
            "invalid size `{value}`: must be positive"
        )));
    }
    Ok(n * mult)
}

impl FromStr for FleetSpec {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let inner = s
            .strip_prefix("fleet(")
            .and_then(|rest| rest.strip_suffix(')'))
            .ok_or_else(|| {
                ParseSchemeError(format!(
                    "`{s}` is not a fleet spec: expected fleet(arrivals=…,load=…)"
                ))
            })?;
        let mut spec = FleetSpec::poisson(0.5);
        // Split on commas outside parentheses so `bursty(alpha=1.5)` survives.
        let mut depth = 0usize;
        let mut start = 0usize;
        let mut parts = Vec::new();
        for (i, c) in inner.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    parts.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&inner[start..]);
        for part in parts {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=').ok_or_else(|| {
                ParseSchemeError(format!("fleet parameter `{part}` is not key=value"))
            })?;
            match key.trim() {
                "arrivals" => {
                    let v = value.trim();
                    spec.arrivals = if v == "poisson" {
                        ArrivalProcess::Poisson
                    } else if v == "bursty" {
                        ArrivalProcess::Bursty {
                            alpha: nimbus_traffic::fleet::DEFAULT_BURSTY_ALPHA,
                        }
                    } else if let Some(alpha) = v
                        .strip_prefix("bursty(alpha=")
                        .and_then(|r| r.strip_suffix(')'))
                    {
                        let a: f64 = alpha.trim().parse().map_err(|_| {
                            ParseSchemeError(format!("invalid bursty alpha `{alpha}`"))
                        })?;
                        if !(a > 1.0 && a.is_finite()) {
                            return Err(ParseSchemeError(format!(
                                "bursty alpha must exceed 1 (finite mean), got `{alpha}`"
                            )));
                        }
                        ArrivalProcess::Bursty { alpha: a }
                    } else {
                        return Err(ParseSchemeError(format!(
                            "unknown arrivals `{v}` (expected poisson, bursty or bursty(alpha=…))"
                        )));
                    };
                }
                "load" => {
                    let l: f64 = value.trim().parse().map_err(|_| {
                        ParseSchemeError(format!("invalid load `{value}`: not a number"))
                    })?;
                    if !(l > 0.0 && l <= 2.0) {
                        return Err(ParseSchemeError(format!(
                            "load `{value}` out of range (0, 2]: it is a fraction of link rate"
                        )));
                    }
                    spec.load = l;
                }
                "mean" => spec.mean_flow_bytes = Some(parse_size_bytes(value)?),
                "cc" => {
                    spec.cc = match value.trim() {
                        "cubic" => CcKindSerde::Cubic,
                        "reno" | "newreno" => CcKindSerde::NewReno,
                        other => {
                            return Err(ParseSchemeError(format!(
                                "unknown fleet cc `{other}` (expected cubic or reno)"
                            )))
                        }
                    };
                }
                other => {
                    return Err(ParseSchemeError(format!(
                        "unknown fleet parameter `{other}` (expected arrivals, load, mean, cc)"
                    )));
                }
            }
        }
        Ok(spec)
    }
}

/// A bottleneck + experiment-duration specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Base link rate µ of the primary bottleneck (hop 0), bits/s.
    pub link_rate_bps: f64,
    /// How the primary hop's rate moves over the run (constant unless overridden).
    pub schedule: LinkScheduleSpec,
    /// Buffer size in seconds of line rate (drop-tail unless `pie_target_s` set).
    pub buffer_s: f64,
    /// Propagation RTT of the monitored flow(s), seconds.
    pub prop_rtt_s: f64,
    /// Experiment duration, seconds.
    pub duration_s: f64,
    /// Random seed.
    pub seed: u64,
    /// Optional PIE AQM target delay (seconds) on the primary hop;
    /// drop-tail when `None`.
    pub pie_target_s: Option<f64>,
    /// Random loss probability on the primary hop (0 = none).
    pub loss_probability: f64,
    /// Extra hops after the primary bottleneck (empty = single-link dumbbell).
    pub path: PathSpec,
    /// Spec-described cross flows, each carrying its own [`SchemeSpec`]
    /// (added to the network after any imperatively built cross traffic).
    pub cross_flows: Vec<CrossFlowSpec>,
    /// Optional open-loop fleet workload churning alongside the monitored
    /// flow (installed as a spawner after every static flow).
    pub fleet: Option<FleetSpec>,
    /// ECN marking on the primary (hop-0) bottleneck (`ecn=` axis).  When
    /// enabled, every flow without an explicit override negotiates ECN.
    pub ecn: EcnSpec,
}

impl ScenarioSpec {
    /// The paper's default evaluation link: 96 Mbit/s, 50 ms RTT, 100 ms buffer.
    pub fn default_96mbps(duration_s: f64) -> Self {
        ScenarioSpec {
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Constant,
            buffer_s: 0.1,
            prop_rtt_s: 0.05,
            duration_s,
            seed: 1,
            pie_target_s: None,
            loss_probability: 0.0,
            path: PathSpec::single(),
            cross_flows: Vec::new(),
            fleet: None,
            ecn: EcnSpec::Off,
        }
    }

    /// Enable ECN marking on the primary bottleneck (builder style).
    pub fn with_ecn(mut self, ecn: EcnSpec) -> Self {
        self.ecn = ecn;
        self
    }

    /// The Fig. 1 link: 48 Mbit/s, 50 ms RTT, 100 ms buffer.
    pub fn fig1_48mbps(duration_s: f64) -> Self {
        ScenarioSpec {
            link_rate_bps: 48e6,
            ..Self::default_96mbps(duration_s)
        }
    }

    /// Scale the duration down for quick runs.
    pub fn quick(mut self, quick: bool, factor: f64) -> Self {
        if quick {
            self.duration_s = (self.duration_s * factor).max(12.0);
        }
        self
    }

    /// The nominal bottleneck rate a configured-µ scheme should be handed:
    /// the minimum base rate over every hop of the path.  Equal to
    /// `link_rate_bps` for single-hop scenarios.
    pub fn nominal_mu_bps(&self) -> f64 {
        self.path.nominal_mu_over_hops(self.link_rate_bps, 0, None)
    }

    /// Build the simulator network for this spec.
    pub fn build_network(&self) -> Network {
        let mut cfg = SimConfig::new(self.link_rate_bps, self.buffer_s, self.duration_s);
        cfg.seed = self.seed;
        cfg.path[0].schedule = self.schedule.to_schedule(self.link_rate_bps);
        if let Some(target) = self.pie_target_s {
            cfg.path[0].queue = QueueKind::Pie {
                target_delay_s: target,
                buffer_s: self.buffer_s,
            };
        }
        if self.loss_probability > 0.0 {
            cfg.path[0].loss = LossModel::Bernoulli {
                p: self.loss_probability,
            };
        }
        cfg.path[0].ecn = self.ecn.to_marking();
        for hop in &self.path.extra_hops {
            let base = hop.rate_factor * self.link_rate_bps;
            let link = LinkConfig::drop_tail(base, hop.buffer_s)
                .with_schedule(hop.schedule.to_schedule(base))
                .with_prop_delay(Time::from_secs_f64(hop.prop_delay_s))
                .with_ecn(hop.ecn.to_marking());
            cfg.path.push(link);
        }
        Network::new(cfg)
    }
}

/// Summary metrics for one monitored flow after a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleFlowMetrics {
    /// Scheme label.
    pub label: String,
    /// Mean throughput over the steady-state window, Mbit/s.
    pub mean_throughput_mbps: f64,
    /// Mean RTT over the steady-state window, ms.
    pub mean_rtt_ms: f64,
    /// Median RTT, ms.
    pub median_rtt_ms: f64,
    /// Mean per-packet bottleneck queueing delay, ms.
    pub mean_queue_delay_ms: f64,
    /// Median per-packet queueing delay, ms.
    pub median_queue_delay_ms: f64,
    /// Throughput time series (s, Mbit/s).
    pub throughput_series: Vec<(f64, f64)>,
    /// Queueing-delay time series (s, ms).
    pub queue_delay_series: Vec<(f64, f64)>,
    /// RTT time series (s, ms).
    pub rtt_series: Vec<(f64, f64)>,
    /// Raw per-packet RTT-like samples for CDFs (ms).
    pub rtt_samples_ms: Vec<f64>,
    /// Per-interval throughput samples for CDFs (Mbit/s).
    pub throughput_samples_mbps: Vec<f64>,
    /// Fraction of time a Nimbus flow spent in delay mode (1.0 for non-Nimbus).
    pub delay_mode_fraction: f64,
    /// Nimbus mode log (empty for non-Nimbus schemes).
    pub mode_log: Vec<(f64, String)>,
    /// Elasticity metric time series (empty for non-Nimbus schemes).
    pub eta_series: Vec<(f64, f64)>,
    /// Learned-µ series `(t_s, µ̂_bps)` for Nimbus flows estimating the link
    /// rate at runtime (empty otherwise).
    pub mu_series: Vec<(f64, f64)>,
    /// Mean relative error `|µ̂(t) − µ(t)|/µ(t)` over the steady-state window
    /// against the scenario's true rate schedule.  NaN when µ was configured
    /// (nothing learned) or no estimates fell in the window.
    pub mu_tracking_error: f64,
}

/// Everything a figure needs after a run.
pub struct RunOutput {
    /// The recorder moved out of the network.
    pub recorder: Recorder,
    /// Metrics for each monitored flow, in the order they were added.
    pub flows: Vec<SingleFlowMetrics>,
    /// Total engine events processed (for sweep benchmarking).
    pub events_processed: u64,
    /// Simulated duration actually covered, seconds.
    pub duration_s: f64,
}

/// Extract a time series as `(t, v)` pairs, skipping NaN values.
fn series_of(ts: &nimbus_netsim::TimeSeries) -> Vec<(f64, f64)> {
    ts.t.iter()
        .zip(ts.v.iter())
        .filter(|(_, v)| v.is_finite())
        .map(|(t, v)| (*t, *v))
        .collect()
}

/// Pull the Nimbus controller out of a boxed endpoint, if that is what it is.
pub fn nimbus_of(endpoint: &dyn FlowEndpoint) -> Option<&NimbusController> {
    let sender = endpoint.as_any()?.downcast_ref::<Sender>()?;
    sender
        .congestion_control()
        .as_any()?
        .downcast_ref::<NimbusController>()
}

/// Run a prepared network and extract per-monitored-flow metrics.
///
/// `steady_start_s` excludes the start-up transient from the scalar summaries
/// (series always cover the whole run).
pub fn run_and_collect(
    mut net: Network,
    handles: &[(FlowHandle, SchemeSpec)],
    steady_start_s: f64,
) -> RunOutput {
    net.run();
    let duration_s = net.now().as_secs_f64();
    let events_processed = net.events_processed();
    // The true µ(t) a flow can sustain is the minimum over every hop's
    // schedule — on a single-hop path this is just the bottleneck schedule.
    let schedules: Vec<RateSchedule> = net.hop_schedules().into_iter().cloned().collect();
    let (recorder, endpoints) = net.finish();
    let mut flows = Vec::new();
    for (handle, scheme) in handles {
        let slot = recorder
            .monitored_slot(handle.0)
            .expect("monitored flow expected");
        let tput = &recorder.throughput_mbps[slot];
        let rtt = &recorder.rtt_ms[slot];
        let qd = &recorder.queue_delay_ms[slot];
        let window = (steady_start_s, duration_s);

        let mut metrics = SingleFlowMetrics {
            label: scheme.label(),
            mean_throughput_mbps: tput.mean_in_range(window.0, window.1),
            mean_rtt_ms: rtt.mean_in_range(window.0, window.1),
            median_rtt_ms: nimbus_dsp::percentile(
                &rtt.values()
                    .iter()
                    .copied()
                    .filter(|v| v.is_finite())
                    .collect::<Vec<_>>(),
                50.0,
            ),
            mean_queue_delay_ms: qd.mean_in_range(window.0, window.1),
            median_queue_delay_ms: nimbus_dsp::percentile(
                &recorder.packet_delay_samples_ms[slot],
                50.0,
            ),
            throughput_series: series_of(tput),
            queue_delay_series: series_of(qd),
            rtt_series: series_of(rtt),
            rtt_samples_ms: rtt
                .values()
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect(),
            throughput_samples_mbps: tput.values().to_vec(),
            delay_mode_fraction: 1.0,
            mode_log: Vec::new(),
            eta_series: Vec::new(),
            mu_series: Vec::new(),
            mu_tracking_error: f64::NAN,
        };

        if let Some(nimbus) = nimbus_of(endpoints[handle.0].as_ref()) {
            metrics.delay_mode_fraction = nimbus.delay_mode_fraction(steady_start_s, duration_s);
            metrics.mode_log = nimbus
                .mode_log()
                .iter()
                .map(|(t, m)| {
                    (
                        *t,
                        match m {
                            Mode::Delay => "delay".to_string(),
                            Mode::Competitive => "competitive".to_string(),
                        },
                    )
                })
                .collect();
            metrics.eta_series = nimbus
                .detector()
                .verdicts()
                .iter()
                .map(|v| (v.t_s, v.eta.min(1e3)))
                .collect();
            metrics.mu_series = nimbus.estimator().mu_series().to_vec();
            let errors: Vec<f64> = metrics
                .mu_series
                .iter()
                .filter(|(t, _)| *t >= steady_start_s && *t <= duration_s)
                .map(|&(t, mu_hat)| {
                    let at = Time::from_secs_f64(t);
                    let mu_true = schedules
                        .iter()
                        .map(|s| s.rate_at(at))
                        .fold(f64::INFINITY, f64::min);
                    (mu_hat - mu_true).abs() / mu_true
                })
                .collect();
            if !errors.is_empty() {
                metrics.mu_tracking_error = errors.iter().sum::<f64>() / errors.len() as f64;
            }
        }
        flows.push(metrics);
    }
    RunOutput {
        recorder,
        flows,
        events_processed,
        duration_s,
    }
}

/// Convenience: run a single monitored scheme against an arbitrary set of
/// cross-traffic flows on the given scenario.  Spec-described cross flows
/// ([`ScenarioSpec::cross_flows`]) are added after the imperative `cross`
/// set.
pub fn run_scheme_vs_cross(
    spec: &ScenarioSpec,
    scheme: SchemeSpec,
    multiflow: Option<MultiflowConfig>,
    cross: Vec<(FlowConfig, Box<dyn FlowEndpoint>)>,
    steady_start_s: f64,
) -> RunOutput {
    let mut net = spec.build_network();
    let endpoint = scheme.build_endpoint(spec.nominal_mu_bps(), spec.seed, multiflow);
    // The primary flow is ECN-capable when its scheme wants marks or the
    // scenario enables marking on the path (ECT on a non-marking queue is
    // harmless: no marks ever arrive, so every reaction path stays inert).
    let primary_ecn = scheme.uses_ecn() || spec.ecn.is_enabled();
    let handle = net.add_flow(
        FlowConfig::primary(&scheme.label(), Time::from_secs_f64(spec.prop_rtt_s))
            .with_ecn(primary_ecn),
        endpoint,
    );
    for (mut cfg, ep) in cross {
        // Scenario-wide ECN makes explicitly-passed competitors ECT too:
        // a non-ECT competitor on a classic-ECN queue would fill the buffer
        // to the drop point while ECT flows back off at the (lower) marking
        // threshold, starving them — a queue-configuration artifact, not a
        // scheme property.
        if spec.ecn.is_enabled() {
            cfg = cfg.with_ecn(true);
        }
        net.add_flow(cfg, ep);
    }
    for (i, cf) in spec.cross_flows.iter().enumerate() {
        // A hop-confined flow's nominal µ is the minimum over the hops it
        // actually traverses, not the whole path's.
        let mu = spec
            .path
            .nominal_mu_over_hops(spec.link_rate_bps, cf.entry_hop, cf.exit_hop);
        let (mut cfg, ep) = cf.build(i, mu, spec.seed);
        // Scenario-wide ECN sweeps every cross flow in, unless one opted out.
        if cf.ecn.is_none() && spec.ecn.is_enabled() {
            cfg = cfg.with_ecn(true);
        }
        net.add_flow(cfg, ep);
    }
    if let Some(fleet) = &spec.fleet {
        net.add_spawner(Box::new(fleet.build_spawner(
            spec.link_rate_bps,
            spec.duration_s,
            spec.seed,
        )));
    }
    run_and_collect(net, &[(handle, scheme)], steady_start_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_transport::{CcKind, FixedSizeSource, PathInfo, SenderConfig};

    #[test]
    fn spec_builders_and_quick_scaling() {
        let spec = ScenarioSpec::default_96mbps(180.0);
        assert_eq!(spec.link_rate_bps, 96e6);
        assert_eq!(spec.schedule, LinkScheduleSpec::Constant);
        let quick = spec.clone().quick(true, 0.2);
        assert!((quick.duration_s - 36.0).abs() < 1e-9);
        let not_quick = spec.quick(false, 0.2);
        assert_eq!(not_quick.duration_s, 180.0);
    }

    #[test]
    fn schedule_specs_materialize_against_the_base_rate() {
        use nimbus_netsim::Time;
        let step = LinkScheduleSpec::Step {
            at_s: 10.0,
            factor: 0.5,
        };
        let s = step.to_schedule(96e6);
        assert_eq!(s.rate_at(Time::from_secs_f64(5.0)), 96e6);
        assert_eq!(s.rate_at(Time::from_secs_f64(15.0)), 48e6);
        assert_eq!(step.label(), "step50@10");

        let sin = LinkScheduleSpec::Sinusoid {
            amplitude_frac: 0.25,
            period_s: 8.0,
        };
        let s = sin.to_schedule(48e6);
        assert_eq!(s.max_rate_bps(), 60e6);
        assert_eq!(s.min_rate_bps(), 36e6);
        assert_eq!(sin.label(), "sin25p8");

        let trace = LinkScheduleSpec::Trace {
            interval_s: 0.5,
            factors: vec![1.0, 0.25],
        };
        let s = trace.to_schedule(40e6);
        assert_eq!(s.rate_at(Time::from_millis(250)), 40e6);
        assert_eq!(s.rate_at(Time::from_millis(750)), 10e6);
        // Repeats.
        assert_eq!(s.rate_at(Time::from_millis(1250)), 40e6);
        assert_eq!(trace.label(), "trace2");
        assert_eq!(LinkScheduleSpec::Constant.label(), "const");
    }

    #[test]
    fn run_scheme_vs_cross_produces_metrics() {
        let spec = ScenarioSpec {
            duration_s: 15.0,
            ..ScenarioSpec::fig1_48mbps(15.0)
        };
        let cross: Vec<(FlowConfig, Box<dyn FlowEndpoint>)> = vec![(
            FlowConfig::cross("short", Time::from_millis(50), true).with_size(2_000_000),
            Box::new(Sender::new(
                SenderConfig::labelled("short"),
                CcKind::Cubic.build(&PathInfo::new(1500)),
                Box::new(FixedSizeSource::new(2_000_000)),
            )),
        )];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::cubic(), None, cross, 3.0);
        assert_eq!(out.flows.len(), 1);
        let m = &out.flows[0];
        assert_eq!(m.label, "cubic");
        assert!(m.mean_throughput_mbps > 20.0, "{}", m.mean_throughput_mbps);
        assert!(!m.throughput_series.is_empty());
        assert!(m.mean_rtt_ms > 40.0);
        // Non-Nimbus flows report a full delay-mode fraction and empty logs.
        assert_eq!(m.delay_mode_fraction, 1.0);
        assert!(m.mode_log.is_empty());
    }

    #[test]
    fn trace_file_schedules_load_and_label() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../traces/sample-cellular.mahimahi"
        );
        let spec = LinkScheduleSpec::TraceFile {
            path: path.to_string(),
        };
        let s = spec.to_schedule(48e6);
        // Absolute rates from the file: the 48 Mbit/s base does not scale them.
        assert!(s.max_rate_bps() < 20e6, "max {}", s.max_rate_bps());
        assert!(!s.is_constant());
        assert_eq!(spec.label(), "mm-sample-cellular");
    }

    #[test]
    #[should_panic(expected = "cannot load mahimahi trace")]
    fn missing_trace_file_panics_with_the_path() {
        LinkScheduleSpec::TraceFile {
            path: "/nonexistent/x.trace".to_string(),
        }
        .to_schedule(48e6);
    }

    #[test]
    fn named_trace_schedules_materialize_and_label() {
        let spec = LinkScheduleSpec::NamedTrace {
            name: "cellular".to_string(),
        };
        let s = spec.to_schedule(48e6);
        assert_eq!(s.rate_at(Time::ZERO), 48e6);
        assert!(!s.is_constant());
        assert_eq!(spec.label(), "trace-cellular");
    }

    #[test]
    #[should_panic(expected = "unknown built-in trace")]
    fn unknown_named_trace_panics_with_the_catalogue() {
        LinkScheduleSpec::NamedTrace {
            name: "bogus".to_string(),
        }
        .to_schedule(48e6);
    }

    #[test]
    fn spec_described_cross_flows_compete() {
        // A declarative heterogeneous scenario: monitored Cubic vs a CBR
        // aggregate carried entirely by `ScenarioSpec::cross_flows`.
        let mut spec = ScenarioSpec {
            duration_s: 15.0,
            ..ScenarioSpec::fig1_48mbps(15.0)
        };
        spec.cross_flows = vec![CrossFlowSpec::new(crate::scheme::SchemeSpec::constant(
            24e6,
        ))];
        let out = run_scheme_vs_cross(&spec, SchemeSpec::cubic(), None, Vec::new(), 5.0);
        let m = &out.flows[0];
        // The CBR flow holds its half, so Cubic lands near the other half.
        assert!(
            m.mean_throughput_mbps > 14.0 && m.mean_throughput_mbps < 30.0,
            "cubic got {} Mbit/s against a 24 Mbit/s CBR competitor",
            m.mean_throughput_mbps
        );
    }

    #[test]
    fn fleet_spec_grammar_round_trips() {
        let cases = [
            "fleet(arrivals=poisson,load=0.5)",
            "fleet(arrivals=bursty(alpha=1.5),load=0.3)",
            "fleet(arrivals=poisson,load=0.6,mean=50000,cc=reno)",
        ];
        for text in cases {
            let spec: FleetSpec = text.parse().unwrap();
            let display = spec.to_string();
            let again: FleetSpec = display.parse().unwrap();
            assert_eq!(spec, again, "{text} → {display}");
        }
        // Suffix sizes and bare bursty.
        let spec: FleetSpec = "fleet(arrivals=bursty,load=0.4,mean=50k)".parse().unwrap();
        assert_eq!(spec.mean_flow_bytes, Some(50_000.0));
        assert!(matches!(spec.arrivals, ArrivalProcess::Bursty { .. }));
        let spec: FleetSpec = "fleet(load=0.8,mean=2M)".parse().unwrap();
        assert_eq!(spec.arrivals, ArrivalProcess::Poisson);
        assert_eq!(spec.mean_flow_bytes, Some(2e6));
    }

    #[test]
    fn fleet_spec_grammar_rejects_nonsense() {
        for bad in [
            "fleet(load=0)",
            "fleet(load=5)",
            "fleet(arrivals=uniform,load=0.5)",
            "fleet(arrivals=bursty(alpha=0.9),load=0.5)",
            "fleet(speed=0.5)",
            "fleet(load=0.5",
            "poisson(load=0.5)",
            "fleet(mean=-3,load=0.5)",
        ] {
            assert!(
                bad.parse::<FleetSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn fleet_spec_labels_and_scaled_sizes() {
        assert_eq!(FleetSpec::poisson(0.5).label(), "fleet-poisson-l50");
        assert_eq!(
            FleetSpec::bursty(0.3)
                .with_mean_flow_bytes(50_000.0)
                .with_reno()
                .label(),
            "fleet-bursty-l30-m50k-reno"
        );
        let sizes = FleetSpec::poisson(0.5)
            .with_mean_flow_bytes(50_000.0)
            .size_distribution();
        assert!(
            (sizes.mean_bytes() - 50_000.0).abs() < 1.0,
            "rescaled mean {}",
            sizes.mean_bytes()
        );
    }

    #[test]
    fn scenario_with_fleet_churns_and_retires() {
        let spec = ScenarioSpec {
            duration_s: 15.0,
            fleet: Some(FleetSpec::poisson(0.3)),
            ..ScenarioSpec::fig1_48mbps(15.0)
        };
        let out = run_scheme_vs_cross(&spec, SchemeSpec::cubic(), None, Vec::new(), 5.0);
        // The fleet actually ran: many finite flows completed...
        let fcts = out.recorder.fct_stream();
        assert!(fcts.len() > 30, "only {} fleet completions", fcts.len());
        // ...and the monitored flow still got a usable share.
        let m = &out.flows[0];
        assert!(
            m.mean_throughput_mbps > 10.0,
            "cubic got {} Mbit/s under 30% churn",
            m.mean_throughput_mbps
        );
        let summary = out.recorder.fct_summary();
        assert_eq!(summary.all.count as usize, fcts.len());
        assert!(summary.mice.count > 0, "churn must include mice");
        assert!(summary.all.p50_s > 0.0);
    }

    #[test]
    fn ecn_spec_round_trips_and_loads_legacy_null() {
        let cases = [
            (EcnSpec::Off, "off"),
            (EcnSpec::Classic, "classic"),
            (EcnSpec::l4s(), "l4s"),
            (EcnSpec::Step { threshold_s: 0.005 }, "step(5ms)"),
        ];
        for (spec, text) in cases {
            assert_eq!(spec.to_string(), text);
            assert_eq!(text.parse::<EcnSpec>().unwrap(), spec, "{text}");
            let v = spec.to_value();
            assert_eq!(EcnSpec::from_value(&v).unwrap(), spec);
        }
        // Aliases and unit forms.
        assert_eq!("none".parse::<EcnSpec>().unwrap(), EcnSpec::Off);
        assert_eq!("ecn".parse::<EcnSpec>().unwrap(), EcnSpec::Classic);
        assert_eq!(
            "step(0.005s)".parse::<EcnSpec>().unwrap(),
            EcnSpec::Step { threshold_s: 0.005 }
        );
        assert!("step(1ms".parse::<EcnSpec>().is_err());
        assert!("step(-1ms)".parse::<EcnSpec>().is_err());
        assert!("wide".parse::<EcnSpec>().is_err());
        // A pre-ECN serialized scenario has no `ecn` field: Null loads Off.
        assert_eq!(
            EcnSpec::from_value(&serde::Value::Null).unwrap(),
            EcnSpec::Off
        );
        // Scenario serde round-trip carries the axis.
        let spec = ScenarioSpec {
            ecn: EcnSpec::l4s(),
            ..ScenarioSpec::default_96mbps(10.0)
        };
        let back = ScenarioSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.ecn, EcnSpec::l4s());
        assert_eq!(EcnSpec::l4s().label(), "-l4s");
        assert_eq!(EcnSpec::Off.label(), "");
    }

    #[test]
    fn l4s_scenario_marks_instead_of_dropping_for_dctcp() {
        let spec = ScenarioSpec {
            duration_s: 12.0,
            ecn: EcnSpec::l4s(),
            ..ScenarioSpec::fig1_48mbps(12.0)
        };
        let out = run_scheme_vs_cross(&spec, SchemeSpec::dctcp(), None, Vec::new(), 3.0);
        let marks: u64 = out.recorder.hop_marked_packets.iter().sum();
        let drops: u64 = out.recorder.hop_dropped_packets.iter().sum();
        assert!(marks > 100, "a 1 ms step marker should mark often: {marks}");
        assert_eq!(
            drops, 0,
            "DCTCP on an L4S queue should see marks, not drops"
        );
        let m = &out.flows[0];
        assert!(
            m.mean_throughput_mbps > 35.0,
            "dctcp should fill the 48 Mbit/s link, got {}",
            m.mean_throughput_mbps
        );
    }

    #[test]
    fn ecn_off_scenario_is_mark_free_for_every_flow() {
        let spec = ScenarioSpec {
            duration_s: 10.0,
            ..ScenarioSpec::fig1_48mbps(10.0)
        };
        let out = run_scheme_vs_cross(&spec, SchemeSpec::cubic(), None, Vec::new(), 3.0);
        assert!(out.recorder.hop_marked_packets.iter().all(|&m| m == 0));
    }

    #[test]
    fn nimbus_metrics_include_mode_log() {
        let spec = ScenarioSpec {
            duration_s: 12.0,
            ..ScenarioSpec::fig1_48mbps(12.0)
        };
        let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, Vec::new(), 3.0);
        let m = &out.flows[0];
        assert_eq!(m.label, "nimbus");
        assert!(!m.mode_log.is_empty());
        assert!(
            m.delay_mode_fraction > 0.5,
            "alone on the link Nimbus should stay in delay mode"
        );
    }
}
