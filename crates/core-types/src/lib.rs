//! # nimbus-core-types
//!
//! Host-independent primitive types shared by the Nimbus congestion-control
//! core (`nimbus-core`) and whatever hosts it — the packet-level simulator
//! (`nimbus-netsim`), a real datapath, or a test harness.  Keeping these in
//! a crate with no simulator dependency is what lets `nimbus-core` build
//! standalone.
//!
//! * [`Time`] — integer-nanosecond time points and durations.
//! * [`transmission_time`] — serialization delay of a packet on a link.
//! * [`parse_rate_bps`] / [`format_rate_bps`] — human-friendly bit-rate
//!   strings (`48M`, `1200k`) used by scheme specs and CLI flags.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rate;
pub mod time;

pub use rate::{format_rate_bps, parse_rate_bps};
pub use time::{transmission_time, Time};
