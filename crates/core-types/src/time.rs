//! Virtual time.
//!
//! Time is an integer count of nanoseconds since the start of the run (of a
//! simulation, or of a host connection).  Using an integer (rather than `f64`
//! seconds) keeps event ordering exact and runs bit-for-bit reproducible;
//! nanosecond resolution is ample for serialization times down to single
//! bytes on multi-gigabit links.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time (nanoseconds since simulation start).
///
/// `Time` is also used for durations; the arithmetic saturates at zero on
/// subtraction so transient ordering noise can never produce a negative time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// Time zero (simulation start).
    pub const ZERO: Time = Time(0);
    /// The far future; used as an "infinite" timer deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds. Negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Time {
        if secs <= 0.0 {
            Time::ZERO
        } else {
            Time((secs * 1e9).round() as u64)
        }
    }

    /// Construct from (possibly fractional) milliseconds. Negative values clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Time {
        Time::from_secs_f64(ms / 1e3)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: Time) -> Option<Time> {
        self.0.checked_add(other.0).map(Time)
    }

    /// Multiply a duration by a scalar (used for RTO backoff and the like).
    pub fn mul_f64(self, factor: f64) -> Time {
        if factor <= 0.0 {
            Time::ZERO
        } else {
            Time((self.0 as f64 * factor).round() as u64)
        }
    }

    /// The larger of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Convert a rate in bits/second and a size in bytes to the serialization
/// time of that many bytes on that link.
pub fn transmission_time(bytes: u32, rate_bps: f64) -> Time {
    assert!(rate_bps > 0.0, "link rate must be positive");
    Time::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_millis(50).as_millis_f64(), 50.0);
        assert_eq!(Time::from_micros(10).as_nanos(), 10_000);
        assert!((Time::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Time::from_millis_f64(2.5), Time::from_micros(2500));
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_millis_f64(-5.0), Time::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(20);
        assert_eq!(a - b, Time::ZERO);
        assert_eq!(b - a, Time::from_millis(10));
        assert_eq!(a.saturating_sub(b), Time::ZERO);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Time::from_millis(1);
        let b = Time::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn mul_f64_scales_durations() {
        let rto = Time::from_millis(200);
        assert_eq!(rto.mul_f64(2.0), Time::from_millis(400));
        assert_eq!(rto.mul_f64(0.0), Time::ZERO);
        assert_eq!(rto.mul_f64(-3.0), Time::ZERO);
    }

    #[test]
    fn transmission_time_of_full_packet() {
        // 1500 bytes at 12 Mbit/s = 1 ms.
        let t = transmission_time(1500, 12_000_000.0);
        assert_eq!(t, Time::from_millis(1));
        // 1500 bytes at 96 Mbit/s = 125 µs.
        assert_eq!(
            transmission_time(1500, 96_000_000.0),
            Time::from_micros(125)
        );
    }

    #[test]
    #[should_panic]
    fn transmission_time_rejects_zero_rate() {
        let _ = transmission_time(1500, 0.0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", Time::from_millis(1500)), "1.500000s");
    }
}
