//! Human-friendly bit-rate strings.
//!
//! Scheme specs, CLI flags and result tables all quote link and pacing rates
//! as short strings like `48M` or `1200k`; these two functions are the single
//! parser/printer pair behind all of them, kept exactly inverse of each other.

/// Parse a bit-rate string: a plain number is bits/s, and a trailing
/// `k`/`M`/`G` (case-insensitive) scales by 10³/10⁶/10⁹ — `48M`, `2.5M`,
/// `1200k`, `96000000` are all valid.
pub fn parse_rate_bps(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (digits, multiplier) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1e3),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1e6),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1e9),
        _ => (s, 1.0),
    };
    let value: f64 = digits.trim().parse().map_err(|_| {
        format!("invalid rate `{s}`: expected a number with optional k/M/G suffix, e.g. `48M`")
    })?;
    if !value.is_finite() || value <= 0.0 {
        return Err(format!("invalid rate `{s}`: must be positive and finite"));
    }
    Ok(value * multiplier)
}

/// Render a bit-rate the way [`parse_rate_bps`] reads it, preferring the
/// shortest exact form (`48M`, `1200k`, `2.5M`, …).  The fallback is the
/// shortest decimal that round-trips through `f64`.
pub fn format_rate_bps(bps: f64) -> String {
    for (div, suffix) in [(1e9, "G"), (1e6, "M"), (1e3, "k")] {
        let scaled = bps / div;
        // `{}` on f64 prints the shortest decimal that round-trips, and the
        // guard re-applies the parser's own multiplication, so the printed
        // form always parses back to exactly `bps`.
        if scaled >= 1.0 && scaled * div == bps {
            return format!("{scaled}{suffix}");
        }
    }
    if bps.fract() == 0.0 && bps < 1e15 {
        format!("{}", bps as u64)
    } else {
        format!("{bps:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_parse_and_format_exactly() {
        assert_eq!(parse_rate_bps("48M").unwrap(), 48e6);
        assert_eq!(parse_rate_bps("1200k").unwrap(), 1.2e6);
        assert_eq!(parse_rate_bps("2.5M").unwrap(), 2.5e6);
        assert_eq!(parse_rate_bps("1G").unwrap(), 1e9);
        assert_eq!(parse_rate_bps(" 96000000 ").unwrap(), 96e6);
        assert!(parse_rate_bps("fast").is_err());
        assert!(parse_rate_bps("-3M").is_err());
        assert!(parse_rate_bps("").is_err());

        assert_eq!(format_rate_bps(48e6), "48M");
        assert_eq!(format_rate_bps(2.5e6), "2.5M");
        assert_eq!(format_rate_bps(1e9), "1G");
        assert_eq!(format_rate_bps(999.0), "999");
        // Round-trip exactness for awkward values.
        for bps in [4e5, 1.23e6, 7.0, 123456789.0, 2.5e3, 48e6 / 7.0] {
            let text = format_rate_bps(bps);
            assert_eq!(parse_rate_bps(&text).unwrap(), bps, "via `{text}`");
        }
    }
}
