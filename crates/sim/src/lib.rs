//! # nimbus-sim
//!
//! The simulator adapter: the only crate that knows about **both** the
//! host-independent algorithm crate (`nimbus-core`) and the packet-level
//! simulator stack (`nimbus-netsim` + `nimbus-transport`).
//!
//! `nimbus-core` deliberately has no dependency on the simulator — it speaks
//! only through the [`CongestionControl`](nimbus_core::CongestionControl)
//! host abstraction (ACK / loss / congestion-event / report callbacks).  This
//! crate supplies the glue in the other direction: [`nimbus_flow`] packages a
//! [`NimbusController`] into a complete
//! simulator flow endpoint (sender machinery + backlogged source), ready to
//! be added to a [`Network`](nimbus_netsim::Network).
//!
//! The end-to-end integration tests that drive the full controller through
//! the simulator live here too, keeping `nimbus-core`'s own test suite free
//! of simulator dependencies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use nimbus_core::{NimbusConfig, NimbusController};
use nimbus_transport::{BackloggedSource, Sender, SenderConfig};

/// Convenience: build a complete Nimbus flow endpoint (sender machinery +
/// Nimbus controller + backlogged source) ready to be added to a
/// [`Network`](nimbus_netsim::Network).
pub fn nimbus_flow(cfg: NimbusConfig, label: &str) -> Sender {
    Sender::new(
        SenderConfig::labelled(label),
        Box::new(NimbusController::new(cfg)),
        Box::new(BackloggedSource),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::{CcKind, PathInfo};
    use nimbus_netsim::{FlowConfig, Network, SimConfig, Time};

    #[test]
    fn end_to_end_low_delay_against_inelastic_cross_traffic() {
        // Full simulator run: Nimbus vs 24 Mbit/s Poisson cross traffic on a
        // 48 Mbit/s link.  Expect near-fair throughput with low queueing delay
        // (this is the right half of Fig. 1c).
        let mu = 48e6;
        let mut net = Network::new(SimConfig::new(mu, 0.1, 40.0));
        let h = net.add_flow(
            FlowConfig::primary("nimbus", Time::from_millis(50)),
            Box::new(nimbus_flow(NimbusConfig::default_for_link(mu), "nimbus")),
        );
        net.add_flow(
            FlowConfig::cross("poisson", Time::from_millis(50), false),
            Box::new(Sender::new(
                SenderConfig::labelled("poisson"),
                CcKind::Unlimited.build(&PathInfo::new(1500)),
                Box::new(nimbus_transport::PoissonSource::new(24e6, 1500, 3)),
            )),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let tput = rec.throughput_mbps[slot].mean_in_range(10.0, 40.0);
        let qd = rec.queue_delay_ms[slot].mean_in_range(10.0, 40.0);
        assert!(tput > 18.0, "nimbus throughput {tput}");
        assert!(qd < 40.0, "nimbus queueing delay {qd}");
    }

    #[test]
    fn end_to_end_competes_with_cubic_cross_traffic() {
        // Full simulator run: Nimbus vs one backlogged Cubic flow on a
        // 48 Mbit/s link (the left half of Fig. 1c).  Expect a roughly fair
        // share (well above what a pure delay controller would get).
        let mu = 48e6;
        let mut net = Network::new(SimConfig::new(mu, 0.1, 60.0));
        let h = net.add_flow(
            FlowConfig::primary("nimbus", Time::from_millis(50)),
            Box::new(nimbus_flow(NimbusConfig::default_for_link(mu), "nimbus")),
        );
        net.add_flow(
            FlowConfig::cross("cubic", Time::from_millis(50), true),
            Box::new(Sender::new(
                SenderConfig::labelled("cubic"),
                CcKind::Cubic.build(&PathInfo::new(1500)),
                Box::new(BackloggedSource),
            )),
        );
        net.run();
        let (rec, _) = net.finish();
        let slot = rec.monitored_slot(h.0).unwrap();
        let tput = rec.throughput_mbps[slot].mean_in_range(20.0, 60.0);
        assert!(
            tput > 12.0,
            "nimbus should hold a reasonable share against cubic, got {tput} Mbit/s"
        );
    }
}
