//! # nimbus-repro
//!
//! A from-scratch Rust reproduction of *"Elasticity Detection: A Building
//! Block for Internet Congestion Control"* (Goyal et al.): the Nimbus
//! elasticity detector and mode-switching congestion controller, every
//! baseline it is evaluated against, and the packet-level network simulator
//! the evaluation runs on.
//!
//! This facade crate re-exports the workspace members under short names:
//!
//! * [`core_types`] — dependency-free primitives ([`core_types::Time`],
//!   rate parsing/formatting) shared by every layer.
//! * [`dsp`] — FFT, pulse shapes, filters, statistics.
//! * [`netsim`] — the discrete-event dumbbell simulator (Mahimahi stand-in).
//! * [`transport`] — sender machinery plus re-exports of the
//!   simulator-free congestion controllers under their historical paths.
//! * [`traffic`] — WAN, video and scripted-phase cross-traffic generators.
//! * [`nimbus`] — the paper's contribution, simulator-free: estimator,
//!   detector, BasicDelay, the Nimbus controller, the multi-flow
//!   pulser/watcher protocol and every baseline congestion controller.
//! * [`sim`] — the adapter wiring `nimbus` into the simulator
//!   ([`sim::nimbus_flow`]).
//! * [`experiments`] — the harness regenerating every table and figure.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the system inventory and the per-experiment reproduction record.

pub use nimbus_core as nimbus;
pub use nimbus_core_types as core_types;
pub use nimbus_dsp as dsp;
pub use nimbus_experiments as experiments;
pub use nimbus_netsim as netsim;
pub use nimbus_sim as sim;
pub use nimbus_traffic as traffic;
pub use nimbus_transport as transport;
