//! The scenario-matrix harness: every (scheme × cross-traffic × seed) cell
//! asserts at least one paper invariant, and the full matrix is run twice to
//! pin seed-determinism of the complete recorder output.

use nimbus_repro::experiments::testkit::{matrix_report, paper_invariant_matrix, run_matrix};
use std::collections::HashSet;

#[test]
fn paper_invariants_hold_across_the_matrix() {
    let cells = paper_invariant_matrix();
    assert!(cells.len() >= 12, "matrix too small: {}", cells.len());
    let outcomes = run_matrix(&cells);
    println!("{}", matrix_report(&outcomes));
    let failing: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.violations.is_empty())
        .map(|o| format!("{}: {:?}", o.name, o.violations))
        .collect();
    assert!(
        failing.is_empty(),
        "{} of {} cells violated their invariants:\n{}",
        failing.len(),
        outcomes.len(),
        failing.join("\n")
    );
}

#[test]
fn full_matrix_is_deterministic_and_seed_sensitive() {
    let cells = paper_invariant_matrix();
    let first = run_matrix(&cells);
    let second = run_matrix(&cells);
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "cell {} is not deterministic across identical runs",
            a.name
        );
    }
    // A different seed must actually change the simulation: rerun the matrix
    // with every seed shifted and require at least the stochastic cells
    // (Poisson cross traffic) to produce different recorder output.
    let mut reseeded = cells.clone();
    for cell in &mut reseeded {
        cell.seed += 1000;
    }
    let third = run_matrix(&reseeded);
    let originals: HashSet<u64> = first.iter().map(|o| o.fingerprint).collect();
    let changed = third
        .iter()
        .filter(|o| !originals.contains(&o.fingerprint))
        .count();
    assert!(
        changed > 0,
        "shifting every seed changed no cell's recorder output — seeds are not wired through"
    );
}
