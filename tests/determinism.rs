//! Determinism regression: two simulator runs with the same `SimConfig` seed
//! must produce byte-identical recorder output; different seeds must not.

use nimbus_repro::netsim::{FlowConfig, LossModel, Network, SimConfig, Time};
use nimbus_repro::transport::{
    BackloggedSource, CcKind, PathInfo, PoissonSource, Sender, SenderConfig,
};

/// A stochastic scenario: random bottleneck loss plus Poisson cross traffic,
/// so any seed-wiring mistake shows up immediately.
fn run_snapshot(seed: u64) -> String {
    let mut cfg = SimConfig::new(48e6, 0.1, 12.0);
    cfg.seed = seed;
    cfg.link_mut().loss = LossModel::Bernoulli { p: 0.005 };
    let mut net = Network::new(cfg);
    net.add_flow(
        FlowConfig::primary("cubic", Time::from_millis(50)),
        Box::new(Sender::new(
            SenderConfig::labelled("cubic"),
            CcKind::Cubic.build(&PathInfo::new(1500)),
            Box::new(BackloggedSource),
        )),
    );
    net.add_flow(
        FlowConfig::cross("poisson", Time::from_millis(50), false),
        Box::new(Sender::new(
            SenderConfig::labelled("poisson"),
            CcKind::Unlimited.build(&PathInfo::new(1500)),
            Box::new(PoissonSource::new(12e6, 1500, seed.wrapping_add(17))),
        )),
    );
    net.run();
    let (recorder, _) = net.finish();
    serde_json::to_string(&recorder.snapshot()).expect("recorder snapshot serializes")
}

#[test]
fn same_seed_produces_byte_identical_recorder_output() {
    let a = run_snapshot(42);
    let b = run_snapshot(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed runs diverged");
}

#[test]
fn different_seeds_produce_different_recorder_output() {
    let a = run_snapshot(42);
    let b = run_snapshot(43);
    assert_ne!(a, b, "different seeds produced identical runs");
}
