//! Integration: the baseline congestion controllers exhibit the qualitative
//! behaviours the paper's comparisons rely on.

use nimbus_repro::experiments::figures::{cbr_cross_flow, elastic_cross_flow};
use nimbus_repro::experiments::runner::{run_scheme_vs_cross, ScenarioSpec};
use nimbus_repro::experiments::SchemeSpec;
use nimbus_repro::transport::CcKind;

#[test]
fn cubic_bufferbloats_while_vegas_does_not() {
    let spec = ScenarioSpec {
        duration_s: 30.0,
        seed: 3,
        ..ScenarioSpec::fig1_48mbps(30.0)
    };
    let cubic = run_scheme_vs_cross(&spec, SchemeSpec::cubic(), None, Vec::new(), 8.0);
    let vegas = run_scheme_vs_cross(&spec, SchemeSpec::vegas(), None, Vec::new(), 8.0);
    assert!(cubic.flows[0].mean_queue_delay_ms > 40.0);
    assert!(vegas.flows[0].mean_queue_delay_ms < 15.0);
    assert!(cubic.flows[0].mean_throughput_mbps > 40.0);
    assert!(vegas.flows[0].mean_throughput_mbps > 40.0);
}

#[test]
fn nimbus_stays_in_delay_mode_against_heavy_cbr_cross_traffic() {
    // Appendix D.1: with 80 Mbit/s of CBR on a 96 Mbit/s link, a scheme that
    // relies on periodically draining the queue (Copa) can get stuck in its
    // competitive mode; Nimbus's elasticity detector keeps it in delay mode
    // and the queueing delay stays far below the 100 ms buffer.  (In this
    // reproduction Copa's detector happens to cope with this particular load,
    // so the assertion is on Nimbus's absolute behaviour rather than a strict
    // ordering between the two.)
    let spec = ScenarioSpec {
        duration_s: 40.0,
        seed: 4,
        ..ScenarioSpec::default_96mbps(40.0)
    };
    let cross = vec![cbr_cross_flow("cbr", 80e6, 0.05, 0.0, None)];
    let nimbus = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 10.0);
    let m = &nimbus.flows[0];
    assert!(
        m.mean_queue_delay_ms < 40.0,
        "nimbus queueing delay {} ms should stay well below the 100 ms buffer",
        m.mean_queue_delay_ms
    );
    assert!(
        m.delay_mode_fraction > 0.5,
        "nimbus should classify 83% CBR cross traffic as inelastic, delay-mode fraction {}",
        m.delay_mode_fraction
    );
    assert!(
        m.mean_throughput_mbps > 8.0,
        "throughput {}",
        m.mean_throughput_mbps
    );
}

#[test]
fn vegas_is_starved_by_cubic_cross_traffic() {
    let spec = ScenarioSpec {
        duration_s: 40.0,
        seed: 5,
        ..ScenarioSpec::default_96mbps(40.0)
    };
    let cross = vec![elastic_cross_flow("cubic", CcKind::Cubic, 0.05, 0.0, None)];
    let out = run_scheme_vs_cross(&spec, SchemeSpec::vegas(), None, cross, 15.0);
    assert!(
        out.flows[0].mean_throughput_mbps < 30.0,
        "vegas should be starved, got {}",
        out.flows[0].mean_throughput_mbps
    );
}
