//! Curated built-in rate traces end-to-end, and the deep-fade RTO
//! regression the cellular trace exposed.
//!
//! The wedge: a descending rate fade (0.5× → 0.3× → 0.15× at 500 ms steps)
//! shrinks the delay-sized bottleneck queue while it is full, dropping the
//! entire flight at once with no survivors to SACK.  `in_flight_packets()`
//! then counts the phantom flight forever, the post-timeout `in_flight <
//! cwnd` send gate never opens, and exponential RTO backoff walks to the
//! 60 s cap — the flow is dead for the rest of the run.  The fix deems the
//! whole unsacked flight lost on the *second* consecutive zero-progress
//! timeout (RFC 5681 empty-pipe semantics), which re-opens the gate while
//! leaving every single-timeout recovery byte-identical (the pinned
//! fingerprints in `tests/scheme_spec.rs` / `tests/multihop_scenarios.rs`
//! prove that).

use nimbus_repro::experiments::testkit::{parallel_map, Cell, CrossTraffic, Invariants};
use nimbus_repro::experiments::{EcnSpec, LinkScheduleSpec, PathSpec, SchemeSpec};

fn cell(scheme: SchemeSpec, schedule: LinkScheduleSpec, duration_s: f64) -> Cell {
    Cell {
        scheme,
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule,
        path: PathSpec::single(),
        seed: 1,
        duration_s,
        steady_start_s: duration_s * 0.25,
        ecn: EcnSpec::Off,
        invariants: Invariants::default(),
    }
}

#[test]
fn deep_fade_staircase_does_not_wedge_the_window_path() {
    // The minimized repro: the cellular trace's first 6 seconds as a one-shot
    // staircase.  Before the fix Cubic sent nothing after t ≈ 2.5 s.
    let stairs = LinkScheduleSpec::Steps {
        steps: vec![
            (0.5, 1.2),
            (1.0, 0.9),
            (1.5, 0.5),
            (2.0, 0.3),
            (2.5, 0.15),
            (3.0, 0.4),
            (3.5, 0.8),
            (4.0, 1.1),
            (4.5, 1.5),
            (5.0, 1.3),
            (5.5, 0.7),
        ],
    };
    let outcome = cell(SchemeSpec::cubic(), stairs, 20.0).run();
    let late: Vec<f64> = outcome
        .metrics
        .throughput_series
        .iter()
        .filter(|(t, _)| *t > 10.0)
        .map(|(_, v)| *v)
        .collect();
    assert!(!late.is_empty());
    let late_mean = late.iter().sum::<f64>() / late.len() as f64;
    // The link holds 0.7·48 ≈ 33.6 Mbit/s from t = 5.5 s on; a wedged flow
    // reads 0 here.
    assert!(
        late_mean > 20.0,
        "cubic never recovered from the deep fade: {late_mean} Mbit/s after t=10"
    );
}

#[test]
fn window_schemes_survive_every_builtin_trace() {
    let traces = ["cellular", "wifi", "step-outage"];
    let mut cells = Vec::new();
    for name in traces {
        for scheme in [
            SchemeSpec::cubic(),
            SchemeSpec::newreno(),
            SchemeSpec::bbr(),
        ] {
            cells.push(cell(
                scheme,
                LinkScheduleSpec::NamedTrace {
                    name: name.to_string(),
                },
                30.0,
            ));
        }
    }
    let outcomes = parallel_map(&cells, None, |c| c.run());
    for o in &outcomes {
        assert!(
            o.metrics.mean_throughput_mbps > 5.0,
            "{} starved on a built-in trace: {} Mbit/s",
            o.name,
            o.metrics.mean_throughput_mbps
        );
    }
    // Determinism across the trace-driven cells.
    let again = parallel_map(&cells, None, |c| c.run());
    for (a, b) in outcomes.iter().zip(again.iter()) {
        assert_eq!(a.fingerprint, b.fingerprint, "{} not deterministic", a.name);
    }
}
