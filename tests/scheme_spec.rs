//! The `SchemeSpec` redesign's contract tests.
//!
//! 1. **Behaviour preservation**: every legacy `Scheme` enum variant,
//!    expressed as a `SchemeSpec` *parsed from its legacy alias string*,
//!    reproduces the recorder fingerprints captured on the pre-redesign
//!    enum path, byte for byte — alone on the link for all 12 variants and
//!    against an elastic Cubic competitor for the five Nimbus flavours.
//! 2. **Round-trips**: `FromStr` ↔ `Display` ↔ serde over randomly composed
//!    valid specs (proptest).
//! 3. **Rejection**: malformed spec strings fail with actionable messages.

use nimbus_repro::experiments::testkit::{parallel_map, Cell, CrossTraffic, Invariants};
use nimbus_repro::experiments::{EcnSpec, LinkScheduleSpec, PathSpec, SchemeSpec};
use nimbus_repro::nimbus::{DelayScheme, TcpScheme};
use nimbus_repro::transport::CcKind;
use proptest::prelude::*;
use std::collections::HashMap;

/// Per-variant recorder fingerprints captured on the legacy `Scheme` enum
/// path immediately before the `SchemeSpec` redesign.  The first column is
/// the legacy alias string the spec is parsed from; the cell name the run
/// must produce (and the fingerprint it must hash to) follow.
const LEGACY_FINGERPRINTS_ALONE: &[(&str, &str, u64)] = &[
    (
        "NimbusCubicBasicDelay",
        "nimbus@48M-vs-alone-seed17",
        0xce3f74cac3359920,
    ),
    (
        "NimbusCubicCopa",
        "nimbus-copa@48M-vs-alone-seed17",
        0x2d6e8740ed491d80,
    ),
    (
        "NimbusCubicVegas",
        "nimbus-vegas@48M-vs-alone-seed17",
        0x04572f105fb3b2aa,
    ),
    (
        "NimbusDelayOnly",
        "nimbus-delay@48M-vs-alone-seed17",
        0x9079dcd6146debec,
    ),
    (
        "NimbusEstimatedMu",
        "nimbus-estmu@48M-vs-alone-seed17",
        0x098248daeaa57721,
    ),
    ("Cubic", "cubic@48M-vs-alone-seed17", 0x468305ac73be07af),
    ("NewReno", "newreno@48M-vs-alone-seed17", 0x7658b2ca552df73a),
    ("Vegas", "vegas@48M-vs-alone-seed17", 0xe403a5a46156d992),
    ("Copa", "copa@48M-vs-alone-seed17", 0x8732aa98b0df0887),
    ("Bbr", "bbr@48M-vs-alone-seed17", 0x70282d8c84a358b9),
    (
        "Vivace",
        "pcc-vivace@48M-vs-alone-seed17",
        0x0570645ce6cf0ee4,
    ),
    (
        "Compound",
        "compound@48M-vs-alone-seed17",
        0xc3624d30681e4d88,
    ),
];

/// The five Nimbus flavours against an elastic Cubic competitor, this time
/// parsed from the legacy *label* aliases (`nimbus-copa`, …) so both alias
/// families are proven equivalent to the enum path.
const LEGACY_FINGERPRINTS_VS_CUBIC: &[(&str, &str, u64)] = &[
    ("nimbus", "nimbus@96M-vs-cubic-seed18", 0x4fb8913e960cd2c2),
    (
        "nimbus-copa",
        "nimbus-copa@96M-vs-cubic-seed18",
        0xba48b59353abe99b,
    ),
    (
        "nimbus-vegas",
        "nimbus-vegas@96M-vs-cubic-seed18",
        0xc04599233c8de4c0,
    ),
    (
        "nimbus-delay",
        "nimbus-delay@96M-vs-cubic-seed18",
        0xce660627c2f715ad,
    ),
    (
        "nimbus-estmu",
        "nimbus-estmu@96M-vs-cubic-seed18",
        0xd323b5297c3678d4,
    ),
];

fn preservation_cells() -> (Vec<Cell>, HashMap<String, u64>) {
    let mut cells = Vec::new();
    let mut pinned = HashMap::new();
    for &(alias, name, fingerprint) in LEGACY_FINGERPRINTS_ALONE {
        let scheme: SchemeSpec = alias.parse().expect("legacy alias parses");
        cells.push(Cell {
            scheme,
            cross: CrossTraffic::None,
            link_rate_bps: 48e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 17,
            duration_s: 20.0,
            steady_start_s: 6.0,
            ecn: EcnSpec::Off,
            invariants: Invariants::default(),
        });
        pinned.insert(name.to_string(), fingerprint);
    }
    for &(alias, name, fingerprint) in LEGACY_FINGERPRINTS_VS_CUBIC {
        let scheme: SchemeSpec = alias.parse().expect("legacy label parses");
        cells.push(Cell {
            scheme,
            cross: CrossTraffic::elastic_cubic(),
            link_rate_bps: 96e6,
            schedule: LinkScheduleSpec::Constant,
            path: PathSpec::single(),
            seed: 18,
            duration_s: 25.0,
            steady_start_s: 8.0,
            ecn: EcnSpec::Off,
            invariants: Invariants::default(),
        });
        pinned.insert(name.to_string(), fingerprint);
    }
    (cells, pinned)
}

#[test]
fn every_legacy_variant_reproduces_its_pre_redesign_fingerprint() {
    let (cells, pinned) = preservation_cells();
    let outcomes = parallel_map(&cells, None, |c| c.run());
    for o in &outcomes {
        let expected = pinned
            .get(&o.name)
            .unwrap_or_else(|| panic!("cell {} not in the pinned set", o.name));
        assert_eq!(
            o.fingerprint, *expected,
            "cell {} diverged from the legacy Scheme enum path",
            o.name
        );
    }
}

#[test]
fn builder_alias_and_string_paths_agree() {
    // Three routes to the same spec: the legacy enum-variant alias string,
    // the canonical string, and the builder — all must be the same value.
    let from_alias: SchemeSpec = "NimbusCubicCopa".parse().unwrap();
    let from_string: SchemeSpec = "nimbus(delay=copa)".parse().unwrap();
    let from_builder = SchemeSpec::nimbus().with_delay(DelayScheme::CopaDefault);
    assert_eq!(from_alias, from_string);
    assert_eq!(from_string, from_builder);
}

fn compose_nimbus(comp: usize, delay: usize, mu: usize, sw: usize) -> SchemeSpec {
    let mut spec = SchemeSpec::nimbus();
    if comp == 1 {
        spec = spec.with_competitive(TcpScheme::NewReno);
    }
    spec = match delay {
        0 => spec,
        1 => spec.with_delay(DelayScheme::CopaDefault),
        _ => spec.with_delay(DelayScheme::Vegas),
    };
    if mu == 1 {
        spec = spec.with_learned_mu();
    }
    if sw == 1 {
        spec = spec.delay_only();
    }
    spec
}

fn bare(index: usize, rate_bps: f64) -> SchemeSpec {
    match index {
        0 => SchemeSpec::cubic(),
        1 => SchemeSpec::newreno(),
        2 => SchemeSpec::vegas(),
        3 => SchemeSpec::copa(),
        4 => SchemeSpec::bbr(),
        5 => SchemeSpec::vivace(),
        6 => SchemeSpec::compound(),
        7 => SchemeSpec::Bare(CcKind::Unlimited),
        _ => SchemeSpec::constant(rate_bps),
    }
}

proptest! {
    #[test]
    fn random_specs_round_trip_through_display_and_serde(
        pick in 0usize..2,
        comp in 0usize..2,
        delay in 0usize..3,
        mu in 0usize..2,
        sw in 0usize..2,
        bare_index in 0usize..9,
        rate_units in 1u64..4000,
    ) {
        // Rates are whole multiples of 100 kbit/s, so every generated rate
        // has an exact decimal (and often a k/M-suffixed) rendering.
        let spec = if pick == 0 {
            compose_nimbus(comp, delay, mu, sw)
        } else {
            bare(bare_index, rate_units as f64 * 1e5)
        };
        // Display → FromStr.
        let text = spec.to_string();
        let parsed: SchemeSpec = text.parse()
            .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
        prop_assert_eq!(parsed, spec);
        // serde (JSON text) → back.
        let json = serde_json::to_string(&spec).unwrap();
        let back: SchemeSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
        // The derived label is stable and non-empty.
        prop_assert_eq!(parsed.label(), spec.label());
        prop_assert!(!spec.label().is_empty());
    }
}

#[test]
fn malformed_specs_fail_with_actionable_messages() {
    for (input, needle) in [
        ("", "unknown scheme"),
        ("quic", "unknown scheme"),
        ("nimbus(delay=bbr)", "unknown delay scheme"),
        ("nimbus(competitive=vegas)", "unknown competitive scheme"),
        ("nimbus(mu=guessed)", "unknown mu mode"),
        ("nimbus(switch=sometimes)", "unknown switch mode"),
        ("nimbus(pulse=0.5)", "unknown nimbus option"),
        ("nimbus(delay)", "key=value"),
        ("nimbus(delay=copa", "closing"),
        ("constant()", "invalid rate"),
        ("constant(-3M)", "invalid rate"),
        ("constant(12Q)", "invalid rate"),
        // The `cbr(` alias gets the same precise diagnostics.
        ("cbr(fast)", "invalid rate"),
        ("cbr(24M", "closing"),
    ] {
        let err = input
            .parse::<SchemeSpec>()
            .expect_err(&format!("`{input}` should not parse"));
        assert!(
            err.0.contains(needle),
            "error for `{input}` should mention `{needle}`, got: {err}"
        );
    }
}
