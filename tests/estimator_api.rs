//! Contract tests for the pluggable µ-estimation API.
//!
//! 1. **Behaviour preservation**: every `mu=learned` wrapper flavour —
//!    including the two ROADMAP degraded regimes the API exists to fix —
//!    reproduces the recorder fingerprints captured on the pre-API
//!    hardwired estimator, byte for byte.  The default `maxfilt` strategy
//!    IS the old estimator.
//! 2. **Recovered regimes**: the [`estimator_cells`] matrix slice (also run
//!    as part of the full paper-invariant matrix) demonstrates that a
//!    non-default estimator recovers the cellular deep fade (≥ 10 Mbit/s
//!    vs 0.12 pinned below) and the ±10% sinusoid (delay fraction ≥ 0.9 vs
//!    0.17 pinned below), without suppressing genuine elasticity.
//! 3. **Round-trips**: `FromStr` ↔ `Display` ↔ serde over the extended
//!    `mu=learned(...)` / `zfilter=...` grammar (proptest).
//! 4. **Rejection**: malformed estimator specs fail with actionable
//!    messages.

use nimbus_repro::experiments::testkit::{
    estimator_cells, parallel_map, Cell, CrossTraffic, Invariants,
};
use nimbus_repro::experiments::{EcnSpec, LinkScheduleSpec, PathSpec, SchemeSpec};
use nimbus_repro::nimbus::{LearnedMuConfig, ProbingConfig, ZFilterConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// Recorder fingerprints of every learned-µ wrapper flavour, captured on the
/// pre-API hardwired max-filter estimator immediately before the redesign.
/// The sinusoid and cellular cells pin the *degraded* behaviour (delay
/// fraction 0.17, throughput 0.12 Mbit/s): the default strategy must keep
/// reproducing even the failure modes exactly — fixes ride on non-default
/// strategies.
const PRE_API_FINGERPRINTS: &[(&str, u64)] = &[
    ("nimbus-estmu@48M-vs-alone-seed41", 0x098248daeaa57721),
    ("nimbus-copa-estmu@48M-vs-alone-seed41", 0xfa5561497f2e9a4e),
    ("nimbus-vegas-estmu@48M-vs-alone-seed41", 0x7407db92d95df6b7),
    ("nimbus-reno-estmu@48M-vs-alone-seed41", 0xb7d218a503b30b1f),
    ("nimbus-delay-estmu@48M-vs-alone-seed41", 0xc2faa71581eaaec5),
    ("nimbus-estmu@96M-vs-cubic-seed42", 0xd323b5297c3678d4),
    (
        "nimbus-estmu@48M-sin10p10-vs-alone-seed43",
        0x7ac3d6180cffcd8b,
    ),
    (
        "nimbus-estmu@48M-trace-cellular-vs-alone-seed44",
        0x4ab456cd436dc519,
    ),
];

fn preservation_cells() -> Vec<Cell> {
    let alone = |spec: &str, schedule: LinkScheduleSpec, seed: u64, duration_s: f64| Cell {
        scheme: spec.parse().expect("learned-µ spec parses"),
        cross: CrossTraffic::None,
        link_rate_bps: 48e6,
        schedule,
        path: PathSpec::single(),
        seed,
        duration_s,
        steady_start_s: if duration_s > 25.0 { 10.0 } else { 6.0 },
        ecn: EcnSpec::Off,
        invariants: Invariants::default(),
    };
    let mut cells = vec![
        alone("nimbus-estmu", LinkScheduleSpec::Constant, 41, 20.0),
        alone(
            "nimbus(delay=copa,mu=learned)",
            LinkScheduleSpec::Constant,
            41,
            20.0,
        ),
        alone(
            "nimbus(delay=vegas,mu=learned)",
            LinkScheduleSpec::Constant,
            41,
            20.0,
        ),
        alone(
            "nimbus(competitive=reno,mu=learned)",
            LinkScheduleSpec::Constant,
            41,
            20.0,
        ),
        alone(
            "nimbus(mu=learned,switch=never)",
            LinkScheduleSpec::Constant,
            41,
            20.0,
        ),
        // The two ROADMAP degraded regimes, pinned in their degraded state.
        alone(
            "nimbus(mu=learned)",
            LinkScheduleSpec::Sinusoid {
                amplitude_frac: 0.1,
                period_s: 10.0,
            },
            43,
            30.0,
        ),
        alone(
            "nimbus(mu=learned)",
            LinkScheduleSpec::NamedTrace {
                name: "cellular".to_string(),
            },
            44,
            30.0,
        ),
    ];
    cells.push(Cell {
        scheme: "nimbus-estmu".parse().unwrap(),
        cross: CrossTraffic::elastic_cubic(),
        link_rate_bps: 96e6,
        schedule: LinkScheduleSpec::Constant,
        path: PathSpec::single(),
        seed: 42,
        duration_s: 25.0,
        steady_start_s: 8.0,
        ecn: EcnSpec::Off,
        invariants: Invariants::default(),
    });
    cells
}

#[test]
fn maxfilt_is_byte_identical_to_the_pre_api_estimator() {
    let pinned: HashMap<&str, u64> = PRE_API_FINGERPRINTS.iter().copied().collect();
    let cells = preservation_cells();
    assert_eq!(cells.len(), pinned.len());
    let outcomes = parallel_map(&cells, None, |c| c.run());
    for o in &outcomes {
        let expected = pinned
            .get(o.name.as_str())
            .unwrap_or_else(|| panic!("cell {} not in the pinned set", o.name));
        assert_eq!(
            o.fingerprint, *expected,
            "cell {} diverged from the pre-API hardwired estimator",
            o.name
        );
    }
}

#[test]
fn non_default_estimators_recover_the_degraded_regimes() {
    let cells = estimator_cells();
    assert!(cells.len() >= 3);
    let outcomes = parallel_map(&cells, None, |c| c.run());
    for o in &outcomes {
        assert!(o.violations.is_empty(), "{}: {:?}", o.name, o.violations);
    }
    // The headline numbers, stated directly: the cellular deep fade is
    // survived (0.12 Mbit/s on the pinned max filter) and the sinusoid
    // holds delay mode (0.17 on the pinned max filter).
    let cellular = outcomes
        .iter()
        .find(|o| o.name.contains("trace-cellular"))
        .expect("cellular cell present");
    assert!(
        cellular.metrics.mean_throughput_mbps >= 10.0,
        "probing estimator got {} Mbit/s through the deep fades",
        cellular.metrics.mean_throughput_mbps
    );
    let sinusoid = outcomes
        .iter()
        .find(|o| o.name.contains("sin10p10"))
        .expect("sinusoid cell present");
    assert!(
        sinusoid.metrics.delay_mode_fraction >= 0.9,
        "adaptive thresholds held delay mode only {:.2} of the time",
        sinusoid.metrics.delay_mode_fraction
    );
}

// ---- grammar round-trips ---------------------------------------------------

fn mu_strategy(index: usize, a: f64, b: f64) -> Option<LearnedMuConfig> {
    // `a` in (1, 16], `b` in (0, 1): derive strictly-positive parameters so
    // every generated spec is valid by construction.
    match index {
        0 => None, // configured
        1 => Some(LearnedMuConfig::default()),
        2 => Some(LearnedMuConfig::MaxFilter { window_s: a }),
        3 => Some(LearnedMuConfig::Probing(ProbingConfig::default())),
        4 => Some(LearnedMuConfig::Probing(ProbingConfig {
            probe_interval_s: a,
            // The epoch plus its equal-length drain must fit in the interval.
            probe_duration_s: a * b.min(0.45),
            probe_gain: 1.0 + a,
            ..ProbingConfig::default()
        })),
        _ => Some(LearnedMuConfig::Probing(ProbingConfig {
            window_s: a * 2.0,
            loss_backoff: b.clamp(0.05, 0.95),
            backoff_interval_s: a,
            recent_window_s: a,
            cap_margin: 1.0 + b,
            ..ProbingConfig::default()
        })),
    }
}

fn zfilter(index: usize, a: f64) -> ZFilterConfig {
    match index {
        0 => ZFilterConfig::None,
        1 => ZFilterConfig::adaptive(),
        2 => ZFilterConfig::Adaptive { k: a },
        3 => ZFilterConfig::notch(a / 100.0),
        _ => ZFilterConfig::Notch {
            freq_hz: a / 100.0,
            q: a,
        },
    }
}

proptest! {
    #[test]
    fn extended_estimator_specs_round_trip(
        mu_index in 0usize..6,
        zf_index in 0usize..5,
        // Whole multiples of 1/64 so every parameter has an exact, shortest
        // decimal rendering (Display prints f64 shortest-round-trip anyway;
        // this just keeps the strings readable on failure).
        a_units in 65u32..1024,
        b_units in 1u32..63,
    ) {
        let a = a_units as f64 / 64.0;
        let b = b_units as f64 / 64.0;
        let mut spec = SchemeSpec::nimbus();
        if let Some(strategy) = mu_strategy(mu_index, a, b) {
            spec = spec.with_mu_strategy(strategy);
        }
        spec = spec.with_z_filter(zfilter(zf_index, a));
        let text = spec.to_string();
        let parsed: SchemeSpec = text.parse()
            .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
        prop_assert_eq!(parsed, spec, "`{}` did not round-trip", text);
        // serde (canonical string encoding) → back.
        let json = serde_json::to_string(&spec).unwrap();
        let back: SchemeSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
        // The label is stable and still leads with the legacy stem.
        prop_assert_eq!(parsed.label(), spec.label());
        prop_assert!(spec.label().starts_with("nimbus"));
    }
}

#[test]
fn canonical_estimator_spec_strings() {
    // Defaults render compactly; non-defaults render their parameters.
    assert_eq!(
        SchemeSpec::nimbus().with_learned_mu().to_string(),
        "nimbus(mu=learned)"
    );
    assert_eq!(
        SchemeSpec::nimbus().with_probing_mu().to_string(),
        "nimbus(mu=learned(probe=1))"
    );
    assert_eq!(
        SchemeSpec::nimbus()
            .with_quiesced_probing_mu(1.0, 0.4)
            .to_string(),
        "nimbus(mu=learned(probe=1,quiesce=0.4))"
    );
    assert_eq!(
        "nimbus(mu=learned(probe=1,quiesce=0.4))"
            .parse::<SchemeSpec>()
            .unwrap(),
        SchemeSpec::nimbus().with_quiesced_probing_mu(1.0, 0.4)
    );
    assert_eq!(
        SchemeSpec::nimbus()
            .with_learned_mu()
            .with_z_filter(ZFilterConfig::adaptive())
            .to_string(),
        "nimbus(mu=learned,zfilter=adaptive)"
    );
    assert_eq!(
        SchemeSpec::nimbus()
            .with_z_filter(ZFilterConfig::notch(0.1))
            .to_string(),
        "nimbus(zfilter=notch(freq=0.1))"
    );
    // Parameterised forms parse back to exactly the right configs.
    let spec: SchemeSpec = "nimbus(mu=learned(probe=2,gain=3,dur=0.5,window=8))"
        .parse()
        .unwrap();
    assert_eq!(
        spec,
        SchemeSpec::nimbus().with_mu_strategy(LearnedMuConfig::Probing(ProbingConfig {
            probe_interval_s: 2.0,
            probe_gain: 3.0,
            probe_duration_s: 0.5,
            window_s: 8.0,
            ..ProbingConfig::default()
        }))
    );
    let spec: SchemeSpec = "nimbus(mu=learned(window=5))".parse().unwrap();
    assert_eq!(
        spec,
        SchemeSpec::nimbus().with_mu_strategy(LearnedMuConfig::MaxFilter { window_s: 5.0 })
    );
    // Labels keep the legacy `-estmu` stem and append strategy slugs.
    assert_eq!(
        SchemeSpec::nimbus().with_probing_mu().label(),
        "nimbus-estmu-probe1"
    );
    assert_eq!(
        SchemeSpec::nimbus()
            .with_learned_mu()
            .with_z_filter(ZFilterConfig::adaptive())
            .label(),
        "nimbus-estmu-zadapt"
    );
}

#[test]
fn malformed_estimator_specs_fail_with_actionable_messages() {
    for (input, needle) in [
        ("nimbus(mu=learned(probe=fast))", "not a number"),
        ("nimbus(mu=learned(probe=-1))", "positive"),
        ("nimbus(mu=learned(probe=0))", "positive"),
        ("nimbus(mu=learned(turbo=1))", "unknown mu=learned option"),
        ("nimbus(mu=learned(gain=2))", "require probe="),
        // A probe must actually probe: gain ≤ 1 or epoch ≥ interval is a
        // configuration that silently never escapes the fixed point.
        ("nimbus(mu=learned(probe=1,gain=0.5))", "exceed 1"),
        ("nimbus(mu=learned(probe=1,dur=2))", "shorter than"),
        ("nimbus(mu=learned(probe=1,loss=1.5))", "below 1"),
        ("nimbus(mu=learned(quiesce=0.3))", "require probe="),
        (
            "nimbus(mu=learned(probe=1,quiesce=1.5))",
            "quiesce probing unconditionally",
        ),
        ("nimbus(mu=learned(probe=3)", "closing"),
        ("nimbus(mu=guessed)", "unknown mu mode"),
        ("nimbus(zfilter=fft)", "unknown zfilter"),
        ("nimbus(zfilter=notch)", "freq"),
        ("nimbus(zfilter=notch(q=2))", "freq"),
        ("nimbus(zfilter=adaptive(x=2))", "k=<gain>"),
    ] {
        let err = input
            .parse::<SchemeSpec>()
            .expect_err(&format!("`{input}` should not parse"));
        let msg = format!("{err}");
        assert!(
            msg.contains(needle),
            "error for `{input}` should mention `{needle}`, got: {msg}"
        );
    }
}
