//! Path-scenario test tier: the single-bottleneck → path refactor must be
//! provably behaviour-preserving, and the new multi-hop cells must be
//! deterministic regardless of how the matrix is scheduled across threads.

use nimbus_repro::experiments::testkit::{
    legacy_single_bottleneck_cells, multihop_cells, parallel_map,
};
use nimbus_repro::experiments::{PathSpec, SchemeSpec};
use std::collections::HashMap;

/// Recorder fingerprints of the 18 pre-path matrix cells, captured on the
/// single-bottleneck engine immediately before the path refactor.  Every one
/// of these cells now runs as a 1-hop `PathSpec` — and must reproduce the
/// old engine's recorder output byte for byte.
const PRE_REFACTOR_FINGERPRINTS: &[(&str, u64)] = &[
    ("cubic@48M-vs-alone-seed3", 0xc9b047b3b3ca9a57),
    ("cubic@48M-vs-alone-seed11", 0xc9b047b3b3ca9a57),
    ("vegas@48M-vs-alone-seed3", 0x83faf44e9ea9526c),
    ("vegas@48M-vs-alone-seed11", 0x83faf44e9ea9526c),
    ("vegas@96M-vs-cubic-seed5", 0xdbcef018cbc67b16),
    ("vegas@96M-vs-cubic-seed13", 0xdbcef018cbc67b16),
    ("nimbus@96M-vs-cbr83-seed4", 0xee3b54fcd837df2b),
    ("nimbus@96M-vs-cbr83-seed12", 0xee3b54fcd837df2b),
    ("nimbus@48M-vs-poisson50-seed1", 0x9ccdd8ea3e1d80bf),
    ("nimbus@48M-vs-poisson50-seed9", 0xc8f85627fb487a98),
    ("nimbus@48M-vs-cubic-seed2", 0xd65ed71b29821cd1),
    ("nimbus@48M-vs-cubic-seed10", 0xd65ed71b29821cd1),
    ("nimbus@48M-vs-alone-seed6", 0xf06482e63a11d31f),
    ("nimbus@48M-vs-alone-seed14", 0xf06482e63a11d31f),
    (
        "nimbus-estmu@48M-sin25p20-vs-alone-seed7",
        0xe6a36efc6b15f749,
    ),
    ("nimbus@48M-sin10p10-vs-alone-seed8", 0xf20c462c4b0f7abb),
    ("cubic@96M-step50@15-vs-alone-seed9", 0xc49ea25d2c814422),
    ("nimbus@96M-step50@15-vs-alone-seed9", 0xf5ff8d4108218eb6),
];

#[test]
fn one_hop_paths_reproduce_pre_refactor_fingerprints() {
    let pinned: HashMap<&str, u64> = PRE_REFACTOR_FINGERPRINTS.iter().copied().collect();
    let cells = legacy_single_bottleneck_cells();
    assert!(
        cells.iter().all(|c| c.path == PathSpec::single()),
        "the legacy slice is single-bottleneck by construction"
    );
    assert_eq!(
        cells.len(),
        pinned.len(),
        "the legacy slice of the matrix must still be the original 18 cells"
    );
    let outcomes = parallel_map(&cells, None, |c| c.run());
    for o in &outcomes {
        let expected = pinned
            .get(o.name.as_str())
            .unwrap_or_else(|| panic!("cell {} not in the pinned set", o.name));
        assert_eq!(
            o.fingerprint, *expected,
            "cell {} diverged from the pre-path single-bottleneck engine",
            o.name
        );
    }
}

#[test]
fn multihop_matrix_is_deterministic_across_thread_counts() {
    let cells = multihop_cells();
    assert!(cells.len() >= 4, "need at least 4 multi-hop cells");
    assert!(
        cells.iter().any(|c| c.path.label().contains("mv")),
        "the multi-hop slice must include a moving-bottleneck cell"
    );
    let serial = parallel_map(&cells, Some(1), |c| c.run());
    let parallel = parallel_map(&cells, Some(4), |c| c.run());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "cell {} depends on worker-thread scheduling",
            a.name
        );
    }
    // And the cells actually hold their paper invariants.
    for o in &serial {
        assert!(o.violations.is_empty(), "{}: {:?}", o.name, o.violations);
    }
}

#[test]
fn learned_mu_tracks_the_path_minimum_not_the_noisy_first_hop() {
    // The estmu multi-hop cell: hop 0 at 48 Mbit/s ± 10%, hop 1 constant at
    // 28.8 Mbit/s.  The learned µ must settle on the 28.8 Mbit/s path
    // minimum; capturing the first hop instead would read ~48 Mbit/s.
    let cell = multihop_cells()
        .into_iter()
        .find(|c| c.scheme == SchemeSpec::nimbus_estmu())
        .expect("the multi-hop slice includes an estimated-µ cell");
    let outcome = cell.run();
    assert!(
        outcome.violations.is_empty(),
        "{}: {:?}",
        outcome.name,
        outcome.violations
    );
    let steady: Vec<f64> = outcome
        .metrics
        .mu_series
        .iter()
        .filter(|(t, _)| *t >= 15.0)
        .map(|(_, mu)| *mu)
        .collect();
    assert!(!steady.is_empty(), "no steady-state µ estimates");
    let mean_mu = steady.iter().sum::<f64>() / steady.len() as f64;
    assert!(
        (mean_mu - 28.8e6).abs() / 28.8e6 < 0.1,
        "learned µ {mean_mu} should track the 28.8 Mbit/s path minimum"
    );
    let max_mu = steady.iter().copied().fold(f64::MIN, f64::max);
    assert!(
        max_mu < 40e6,
        "learned µ peaked at {max_mu}: captured the noisy 48 Mbit/s first hop"
    );
}
