//! Integration: the full pipeline (simulator → sender → Nimbus controller →
//! detector) classifies elastic and inelastic cross traffic correctly and
//! the resulting mode switching delivers the paper's headline behaviour.

use nimbus_repro::experiments::figures::intro::offline_eta;
use nimbus_repro::experiments::figures::{elastic_cross_flow, poisson_cross_flow};
use nimbus_repro::experiments::runner::{run_scheme_vs_cross, ScenarioSpec};
use nimbus_repro::experiments::SchemeSpec;
use nimbus_repro::transport::CcKind;

#[test]
fn offline_detector_separates_reacting_from_non_reacting_cross_traffic() {
    let elastic = offline_eta(true);
    let inelastic = offline_eta(false);
    assert!(
        elastic >= 2.0,
        "reacting cross traffic must exceed the threshold, eta={elastic}"
    );
    assert!(
        inelastic < elastic,
        "non-reacting eta ({inelastic}) must be below reacting ({elastic})"
    );
}

#[test]
fn nimbus_keeps_low_delay_against_inelastic_cross_traffic() {
    let spec = ScenarioSpec {
        duration_s: 30.0,
        seed: 1,
        ..ScenarioSpec::fig1_48mbps(30.0)
    };
    let cross = vec![poisson_cross_flow("poisson", 24e6, 0.05, 5, 0.0, None)];
    let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 8.0);
    let m = &out.flows[0];
    assert!(
        m.mean_throughput_mbps > 15.0,
        "throughput {}",
        m.mean_throughput_mbps
    );
    assert!(
        m.mean_queue_delay_ms < 40.0,
        "queue delay {}",
        m.mean_queue_delay_ms
    );
    assert!(
        m.delay_mode_fraction > 0.6,
        "delay-mode fraction {}",
        m.delay_mode_fraction
    );
}

#[test]
fn nimbus_competes_against_an_elastic_cubic_flow() {
    let spec = ScenarioSpec {
        duration_s: 45.0,
        seed: 2,
        ..ScenarioSpec::fig1_48mbps(45.0)
    };
    let cross = vec![elastic_cross_flow("cubic", CcKind::Cubic, 0.05, 0.0, None)];
    let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, cross, 15.0);
    let m = &out.flows[0];
    // Fair share is 24 Mbit/s; a pure delay scheme would collapse to a few Mbit/s.
    assert!(
        m.mean_throughput_mbps > 12.0,
        "throughput {}",
        m.mean_throughput_mbps
    );
    // It must have left delay mode to do so.
    assert!(
        m.delay_mode_fraction < 0.9,
        "delay-mode fraction {}",
        m.delay_mode_fraction
    );
    assert!(
        m.mode_log.iter().any(|(_, mode)| mode == "competitive"),
        "expected at least one switch to competitive mode: {:?}",
        m.mode_log
    );
}
