//! Fleet workload scenario family, gated end to end: population-scale churn
//! must be deterministic per seed, must retire its flows (bounded hot-path
//! state), and the multiflow population must converge to a fair allocation.

use nimbus_repro::experiments::runner::run_scheme_vs_cross;
use nimbus_repro::experiments::{FleetSpec, ScenarioSpec, SchemeSpec};
use nimbus_repro::netsim::{Recorder, MICE_MAX_BYTES};

/// A 1 Gbit/s churn scenario: Poisson arrivals at 50% offered load spawn
/// ~550 flows/s, so a few simulated seconds cover well over 1000 complete
/// flow lifetimes.
fn thousand_flow_spec(seed: u64) -> ScenarioSpec {
    let duration = 6.0;
    ScenarioSpec {
        link_rate_bps: 1e9,
        duration_s: duration,
        seed,
        fleet: Some(FleetSpec::poisson(0.5)),
        ..ScenarioSpec::default_96mbps(duration)
    }
}

fn snapshot_json(recorder: &Recorder) -> String {
    serde_json::to_string(&recorder.snapshot()).expect("snapshot serializes")
}

#[test]
fn thousand_flow_churn_over_1gbps_is_deterministic() {
    let run = || {
        let spec = thousand_flow_spec(71);
        run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, Vec::new(), 2.0)
    };
    let first = run();
    let second = run();

    // Scale: over 1000 complete flow lifetimes in 6 simulated seconds.
    assert!(
        first.recorder.fct_stream().len() >= 1000,
        "only {} fleet flows completed",
        first.recorder.fct_stream().len()
    );
    // Determinism: the full recorder output (every flow's stats, every
    // monitored series, every hop counter) is byte-identical across runs.
    assert_eq!(
        snapshot_json(&first.recorder),
        snapshot_json(&second.recorder),
        "1000-flow churn diverged between identical runs"
    );
    assert_eq!(first.events_processed, second.events_processed);

    // Detector stability: churn must not read as elastic.
    let m = &first.flows[0];
    assert!(
        m.delay_mode_fraction >= 0.9,
        "churn flipped the detector: delay-mode fraction {:.2}",
        m.delay_mode_fraction
    );
    // The long-lived flow takes a solid share of the residual capacity.
    assert!(
        m.mean_throughput_mbps >= 200.0,
        "monitored flow got only {:.1} Mbit/s of a 1 Gbit/s link at 50% load",
        m.mean_throughput_mbps
    );

    // A different seed genuinely reshuffles arrivals and sizes.
    let spec = thousand_flow_spec(72);
    let third = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, Vec::new(), 2.0);
    assert_ne!(
        snapshot_json(&first.recorder),
        snapshot_json(&third.recorder),
        "reseeding changed nothing — the fleet seed is not wired through"
    );
}

#[test]
fn fleet_fcts_are_complete_and_size_bucketed() {
    let spec = thousand_flow_spec(73);
    let out = run_scheme_vs_cross(&spec, SchemeSpec::nimbus(), None, Vec::new(), 2.0);

    // Every completed finite flow appears exactly once in the FCT stream,
    // and the stream agrees with the per-flow stats derivation.
    let derived = out.recorder.completed_fcts();
    assert_eq!(out.recorder.fct_stream().len(), derived.len());

    // The summary's buckets partition the completions.
    let summary = out.recorder.fct_summary();
    assert_eq!(
        summary.all.count,
        summary.mice.count + summary.medium.count + summary.elephant.count
    );
    assert!(summary.all.count >= 1000);
    // The heavy-tailed mixture makes mice the large majority of *flows*.
    assert!(
        summary.mice.count as f64 >= 0.7 * summary.all.count as f64,
        "mice {} of {}",
        summary.mice.count,
        summary.all.count
    );
    // Percentiles are ordered within every non-empty bucket.
    for bucket in [
        &summary.all,
        &summary.mice,
        &summary.medium,
        &summary.elephant,
    ] {
        if bucket.count > 0 {
            assert!(bucket.p50_s <= bucket.p95_s && bucket.p95_s <= bucket.p99_s);
            assert!(bucket.p50_s > 0.0);
        }
    }
    // Mice finish fast on a 1 Gbit/s link: a 100 kB flow at even a tenth of
    // fair share is sub-second.
    assert!(
        summary.mice.p95_s < 1.0,
        "mice p95 {:.3} s on a 1 Gbit/s link",
        summary.mice.p95_s
    );
    // Sanity on the bucket boundary constant this test relies on.
    assert_eq!(MICE_MAX_BYTES, 100_000);
}

#[test]
fn multiflow_population_converges_to_fair_shares() {
    // The quick fleet_multiflow experiment: 16 concurrent Nimbus flows with
    // the multiflow protocol at 10 Mbit/s fair share each.  The allocation
    // must converge (Jain's index) and the link must stay utilized.
    let r = nimbus_repro::experiments::run_experiment("fleet_multiflow", true)
        .expect("fleet_multiflow is dispatchable");
    let jain = r.get("jain_fairness_index").expect("jain row present");
    assert!(
        jain >= 0.85,
        "16-flow Nimbus population did not converge: Jain index {jain:.3}"
    );
    let aggregate = r.get("aggregate_throughput_mbps").expect("aggregate row");
    let link = r.get("link_rate_mbps").expect("link row");
    assert!(
        aggregate >= 0.85 * link,
        "population left the link underutilized: {aggregate:.1} of {link:.1} Mbit/s"
    );
    let min_rate = r.get("min_flow_throughput_mbps").expect("min row");
    assert!(
        min_rate >= 3.0,
        "a flow was starved: min {min_rate:.2} Mbit/s of a 10 Mbit/s fair share"
    );
}
