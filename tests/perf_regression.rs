//! Regression tests for the `step50-vs-cbr50` event-loop pathology.
//!
//! The committed BENCH_sweep.json baseline once carried
//! `nimbus@48M-step50@7-vs-cbr50-seed1` at 666k events/s while every
//! neighboring cell ran 3.2–3.9M — a 5× per-event slowdown the median-
//! normalized sweep gate could not see because it was baked into the
//! baseline itself.  Root cause: after the rate step halves µ, the CBR cross
//! flow offers exactly the new link rate, never exits SACK recovery, and
//! `Sender::infer_losses` re-walked its entire ~2000-entry scoreboard on
//! every ACK — O(ACKs × window) scoreboard work dominating the event loop.
//!
//! Two guards, one per failure dimension:
//!
//! * a *deterministic* unit-level test pinning the sender's scoreboard scan
//!   cost to O(ACKs + holes) via the [`Sender::scoreboard_scan_steps`]
//!   counter (no timing, cannot flake);
//! * a *wall-clock* test asserting the pathological sweep cell's events/sec
//!   within 2× of the plain `vs-cbr50` cell on the same machine, so any new
//!   per-event pathology in that cell fails loudly instead of silently
//!   re-baselining.

use nimbus_experiments::sweep::sweep_matrix;
use nimbus_netsim::endpoint::{AckInfo, FlowEndpoint, SendAction};
use nimbus_netsim::Time;
use nimbus_transport::{BackloggedSource, CcKind, PathInfo, Sender, SenderConfig};

/// Drive a sender into permanent SACK recovery with a large scoreboard —
/// every even segment lost, every odd segment SACKed — and count the
/// scoreboard positions loss inference visits.
#[test]
fn sack_scan_cost_is_linear_in_acks_plus_holes() {
    let mut sender = Sender::new(
        SenderConfig::labelled("cbr-like"),
        CcKind::Unlimited.build(&PathInfo::new(1500)),
        Box::new(BackloggedSource),
    );
    sender.on_start(Time::ZERO);

    // Fill the window: transmit as many segments as the sender will emit.
    let mut sent = 0u64;
    let now = Time::from_millis(1);
    while sent < 4096 {
        match sender.poll_send(now) {
            SendAction::Transmit { .. } => sent += 1,
            _ => break,
        }
    }
    assert!(sent >= 2000, "expected a deep flight, got {sent}");

    // ACK storm: cum_ack pinned at 0 (segment 0 lost), each odd segment
    // SACKed in order.  From the third duplicate onwards the sender is in
    // recovery and runs loss inference on every ACK, with the scoreboard
    // growing by one entry per ACK — the permanently-recovering CBR shape.
    let acks: u64 = 1500;
    let mut t = 2_000_000u64; // ns
    for k in 0..acks {
        let seq = 2 * k + 1;
        t += 10_000;
        sender.on_ack(&AckInfo {
            now: Time(t),
            cum_ack: 0,
            triggering_seq: seq,
            triggering_bytes: 1500,
            data_sent_at: Time::from_millis(1),
            rtt_sample: Time::from_millis(20),
            is_duplicate: true,
            newly_delivered_bytes: 0,
            total_delivered_bytes: 0,
            ce: false,
        });
    }

    let steps = sender.scoreboard_scan_steps();
    // Linear budget: each ACK appends one scoreboard entry and uncovers at
    // most one new hole, so a frontier-based scan does O(1) amortized work
    // per ACK — comfortably under 8 positions each.  The quadratic rescan
    // this regression pins against would visit ~acks²/2 ≈ 1.1M positions.
    let budget = 8 * acks;
    assert!(
        steps <= budget,
        "scoreboard scan cost regressed to superlinear: {steps} positions \
         for {acks} ACKs (budget {budget}); infer_losses is rescanning the \
         scoreboard instead of resuming from its frontier"
    );
    // And the scan must actually have happened (the counter is live).
    assert!(steps > 0, "loss inference never ran — test setup broken");
}

/// The sweep cell that regressed must stay within 2× of its plain-schedule
/// neighbor.  Both cells run the same schemes, cross traffic, rate and seed;
/// only the rate step differs — their per-event cost should be comparable.
#[test]
fn step50_vs_cbr50_cell_runs_within_2x_of_plain_vs_cbr50() {
    let cells = sweep_matrix(true);
    let find = |name: &str| {
        cells
            .iter()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("quick sweep matrix no longer contains {name}"))
    };
    let step_cell = find("nimbus@48M-step50@7-vs-cbr50-seed1");
    let plain_cell = find("nimbus@48M-vs-cbr50-seed1");

    // Best-of-two wall clocks damp scheduler noise on shared runners; the
    // pre-fix gap (5×) is far outside the 2× bar plus any plausible jitter.
    let events_per_sec = |cell: &nimbus_experiments::Cell| -> f64 {
        (0..2)
            .map(|_| {
                let started = std::time::Instant::now();
                let outcome = cell.run();
                outcome.events as f64 / started.elapsed().as_secs_f64().max(1e-9)
            })
            .fold(0.0f64, f64::max)
    };
    let step_eps = events_per_sec(step_cell);
    let plain_eps = events_per_sec(plain_cell);
    assert!(
        step_eps * 2.0 >= plain_eps,
        "step50-vs-cbr50 pathology is back: {step_eps:.0} ev/s vs {plain_eps:.0} ev/s \
         on the plain vs-cbr50 cell (allowed within 2×)"
    );
}
